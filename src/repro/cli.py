"""Command-line interface: plan, simulate, train and reproduce.

Entry points a downstream adopter needs without writing Python::

    python -m repro.cli models                     # the Table 4 zoo
    python -m repro.cli plan --model gpt3-28b --servers 1
    python -m repro.cli simulate --model gpt3-13b --servers 1 --batch 4
    python -m repro.cli train --steps 100 --lock-free --ssd
    python -m repro.cli check --schedule           # static verification
    python -m repro.cli experiment table5          # any table/figure
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.units import KiB, MiB


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.models import MODEL_ZOO

    print(f"{'name':<14} {'family':<7} {'#layer':>6} {'#head':>5} "
          f"{'d_model':>8} {'d_ffn':>7} {'#expert':>8} {'computed':>10}")
    for config in MODEL_ZOO.values():
        params = config.build(1, 128).param_count
        print(f"{config.name:<14} {config.family:<7} {config.num_layers:>6} "
              f"{config.num_heads:>5} {config.d_model:>8} {config.d_ffn:>7} "
              f"{config.num_experts or '-':>8} {params / 1e9:>9.1f}B")
    return 0


def _resolve_cluster(args: argparse.Namespace):
    """Build the cluster from --cluster FILE if given, else --servers."""
    if getattr(args, "cluster", None):
        from repro.hardware.config_io import load_cluster

        return load_cluster(args.cluster)
    from repro.hardware.cluster import a100_cluster

    return a100_cluster(args.servers)


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.engine.planner import CapacityPlanner
    from repro.models import get_model

    cluster = _resolve_cluster(args)
    planner = CapacityPlanner(cluster)
    config = get_model(args.model)
    print(f"cluster: {cluster.num_servers} server(s), {cluster.num_gpus} GPUs")
    for system in ("deepspeed", "angel-ptm"):
        layers = planner.max_layers(config, system, use_ssd=args.ssd)
        scaled = config.with_layers(layers)
        params = scaled.build(1, args.seq_len).param_count
        batch = planner.max_micro_batch(scaled, system, use_ssd=args.ssd)
        print(f"  {system:<10} max depth {layers:4d} layers "
              f"({params / 1e9:6.1f}B), max micro-batch {batch}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.models import get_model
    from repro.scheduler.unified import UnifiedScheduler

    cluster = _resolve_cluster(args)
    scheduler = UnifiedScheduler(cluster)
    result = scheduler.simulate(
        get_model(args.model), args.batch, seq_len=args.seq_len,
        use_ssd=args.ssd, lock_free=args.lock_free,
    )
    plan = result.plan
    print(f"model           : {args.model} x {plan.trace.num_layers} layers")
    print(f"cluster         : {cluster.num_gpus} GPUs "
          f"({cluster.num_servers} servers)")
    print(f"iteration time  : {result.iteration_time:.3f}s")
    print(f"throughput      : {result.samples_per_second:.2f} samples/s")
    print(f"GPU busy        : {result.gpu_busy_fraction:.1%}")
    print(f"PCIe busy       : {result.pcie_busy_fraction:.1%}")
    print(f"cached layers   : {plan.cache.num_cached}/{plan.trace.num_layers}")
    if args.lock_free:
        print(f"update staleness: {result.staleness:.2f} iterations")
    breakdown = result.breakdown()
    print("time by resource:")
    for kind in ("compute", "pcie", "nccl", "cpu", "ssd"):
        if breakdown[kind] > 0:
            print(f"  {kind:>8}: {breakdown[kind]:8.3f}s "
                  f"({breakdown[f'{kind}_fraction']:5.1%})")
    print(f"bottleneck      : {breakdown['critical_stream']}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.engine.angel import AngelConfig
    from repro.fleet.factory import JobFactory, JobWorkload

    factory = JobFactory(
        JobWorkload(layers=args.layers, lr=args.lr, seed=args.seed)
    )
    config = AngelConfig(
        gpu_memory_bytes=args.gpu_mib * MiB,
        cpu_memory_bytes=64 * MiB,
        ssd_bytes=32 * MiB if args.ssd else 0,
        page_bytes=64 * KiB,
        lock_free=args.lock_free,
        update_interval=4 if args.lock_free else 1,
        pipeline=args.pipeline,
    )
    engine = factory.engine(config)
    losses = []
    for step, batch in enumerate(factory.batches(args.steps)):
        loss = engine(batch)
        engine.backward(loss)
        engine.step()
        losses.append(loss.item())
        if step % max(1, args.steps // 5) == 0:
            print(f"step {step:4d}  loss {np.mean(losses[-10:]):.4f}")
    print(f"final loss {np.mean(losses[-10:]):.4f} "
          f"(from {np.mean(losses[:10]):.4f})")
    for tier, stats in engine.memory_report().items():
        print(f"  {tier}: peak {stats['peak_pages']} pages")
    if args.pipeline:
        pipeline = engine.pipeline_report()
        prefetch = pipeline.get("prefetch", {})
        print(f"pipeline: stalled {pipeline['stall_seconds']*1e3:.1f}ms, "
              f"{prefetch.get('prefetched_groups', 0)} groups prefetched "
              f"({prefetch.get('prefetched_bytes', 0) / MiB:.1f} MiB), "
              f"{pipeline.get('cached_layers_live', 0)} layers GPU-cached")
    engine.close()
    return 0


def _repo_root():
    """Nearest ancestor with a ``pyproject.toml`` or ``.git`` (else cwd)."""
    from pathlib import Path

    here = Path.cwd()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
            return candidate
    return here


def _cmd_profile(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.telemetry.bench import ProfileConfig, run_profile, save_profile

    if args.steps < 1:
        print("profile: --steps must be >= 1", file=sys.stderr)
        return 2
    config = ProfileConfig(
        steps=args.steps,
        layers=args.layers,
        seed=args.seed,
        lock_free=args.lock_free,
        pipeline=args.pipeline,
        measure_overhead=not args.no_overhead,
        compare_pipeline=not args.no_compare,
        watch=not args.no_watch,
    )
    report, telemetry = run_profile(config)
    # Default outdir is the repo root, so CI's benchmark-smoke job leaves
    # BENCH_telemetry.json at the top level regardless of its cwd.
    outdir = Path(args.outdir) if args.outdir else _repo_root()
    outdir.mkdir(parents=True, exist_ok=True)
    bench_path = outdir / "BENCH_telemetry.json"
    trace_path = outdir / "telemetry_trace.json"
    save_profile(report, bench_path)
    telemetry.tracer.save_chrome_trace(
        trace_path, track_order=["train", "updater", "pcie", "scheduler"]
    )
    train = report["train"]
    print(f"steps           : {train['steps']} in {train['elapsed_seconds']:.3f}s "
          f"({train['steps_per_second']:.2f} steps/s)")
    sim = report["simulated"]
    print(f"simulated       : {sim['model']} -> "
          f"{sim['samples_per_second']:.2f} samples/s")
    verification = report.get("verification")
    if verification:
        invariants = verification.get("invariants", [])
        violations = verification.get("violations", [])
        if verification.get("ok"):
            print(f"verification    : schedule verified: {len(invariants)} "
                  f"invariants, 0 violations")
        else:
            print(f"verification    : schedule INVALID: "
                  f"{len(violations)} violation(s)")
    protocol = report.get("protocol_verification")
    if protocol:
        stats = protocol.get("stats") or {}
        if protocol.get("ok"):
            print(f"protocol        : verified over {stats.get('states', '?')} "
                  f"states ({len(protocol.get('invariants', []))} membership "
                  f"invariants)")
        else:
            print(f"protocol        : INVALID: "
                  f"{len(protocol.get('violations', []))} violation(s)")
    print("per-tier traffic:")
    for key, value in sorted(report["per_tier_edge_bytes"].items()):
        print(f"  {key:<40} {value / MiB:8.2f} MiB")
    compare = report.get("pipeline_compare")
    if compare:
        pipelined = compare["pipelined"]
        prefetch = pipelined.get("prefetch") or {}
        print(f"pipeline overlap: {compare['speedup']:.2f}x vs sync on the "
              f"SSD tier ({compare['sync']['steps_per_second']:.2f} -> "
              f"{pipelined['steps_per_second']:.2f} steps/s)")
        print(f"  stalled {pipelined['stall_seconds'] * 1e3:7.1f} ms awaiting prefetch; "
              f"demand fetches {pipelined['demand_fetch_seconds'] * 1e3:7.1f} ms")
        print(f"  {prefetch.get('prefetched_groups', 0)} groups staged "
              f"({prefetch.get('prefetched_bytes', 0) / MiB:.1f} MiB), "
              f"{pipelined.get('cached_layers_live', 0)} layers GPU-cached, "
              f"{(pipelined.get('writeback') or {}).get('flushed', 0)} async flushes")
        print(f"  numerics bit-identical to sync: "
              f"{compare['bit_identical_losses']}")
    if report["overhead"] is not None:
        print(f"span overhead   : "
              f"{report['overhead']['overhead_fraction']:+.1%} vs disabled")
    alerts = report.get("alerts", [])
    if alerts:
        print(f"watchdog alerts : {len(alerts)} fired")
        for payload in alerts[:8]:
            print(f"  [{payload['severity']}] {payload['rule']}: "
                  f"{payload['message']}")
        if len(alerts) > 8:
            print(f"  ... and {len(alerts) - 8} more")
    print(f"span records    : {len(telemetry.tracer.records)}")
    print(f"wrote           : {bench_path}")
    print(f"wrote           : {trace_path}  (open in Perfetto / "
          f"chrome://tracing)")
    if args.report:
        from repro.observe.report import write_report

        written = write_report(
            report, outdir / "run_report.md",
            trace=telemetry.tracer.to_chrome_trace(),
            html=True,
        )
        for path in written:
            print(f"wrote           : {path}")
    return 0


def _cmd_fleet_bench(args: argparse.Namespace) -> int:
    from dataclasses import replace
    from pathlib import Path

    from repro.fleet import (
        FleetConfig,
        TrafficConfig,
        run_fleet_bench,
        save_fleet_bench,
    )

    if args.jobs < 1:
        print("fleet: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.nodes < 1:
        print("fleet: --nodes must be >= 1", file=sys.stderr)
        return 2
    config = FleetConfig(
        seed=args.seed,
        traffic=TrafficConfig(seed=args.seed, num_jobs=args.jobs),
        num_nodes=args.nodes,
    )
    if args.workdir:
        config = replace(config, workdir=args.workdir)
    payload, report = run_fleet_bench(config)

    fleet = payload["fleet"]
    print(f"traffic         : {fleet['jobs_submitted']} job(s), seed "
          f"{args.seed}, {args.nodes} node(s)")
    print(f"completed       : {fleet['jobs_completed']}"
          f"/{fleet['jobs_submitted']} "
          f"in {fleet['makespan_seconds']:.1f} virtual s")
    print(f"throughput      : {fleet['jobs_per_hour']:.1f} jobs/hour")
    print(f"p99 queue wait  : {fleet['p99_queue_latency_seconds']:.3f} s")
    print(f"preemptions     : {fleet['preemptions']}")
    fairness = fleet.get("fairness") or {}
    per_tenant = fairness.get("per_tenant_service_seconds") or {}
    if per_tenant:
        print("tenant service  :")
        for tenant, seconds in sorted(per_tenant.items()):
            print(f"  {tenant:<8} {seconds:8.1f} virtual s")
        print(f"fairness        : max/min service ratio "
              f"{fairness.get('max_min_ratio', 0.0):.2f}")
    for event in payload.get("preemption_events", []):
        print(f"  t={event['time']:.1f}: job {event['victim']} "
              f"({event['victim_tenant']}, prio {event['victim_priority']}) "
              f"preempted at step {event['at_step']} by job "
              f"{event['by_job']} (prio {event['by_priority']}) "
              f"on {event['node']}")

    # Default outdir is the repo root, matching `repro profile`, so CI's
    # fleet-smoke job leaves BENCH_fleet.json at the top level.
    outdir = Path(args.outdir) if args.outdir else _repo_root()
    outdir.mkdir(parents=True, exist_ok=True)
    bench_path = outdir / "BENCH_fleet.json"
    save_fleet_bench(payload, bench_path)
    print(f"wrote           : {bench_path}")
    if args.report:
        from repro.observe.report import write_report

        written = write_report(
            payload, outdir / "fleet_run_report.md",
            html=True, title="Fleet run report",
        )
        for path in written:
            print(f"wrote           : {path}")

    failures = []
    if fleet["jobs_per_hour"] <= 0:
        failures.append("jobs/hour is zero — nothing completed")
    if fleet["jobs_completed"] < fleet["jobs_submitted"]:
        failures.append(
            f"only {fleet['jobs_completed']}/{fleet['jobs_submitted']} "
            f"job(s) completed"
        )
    if fleet["preemptions"] < args.min_preemptions:
        failures.append(
            f"{fleet['preemptions']} preemption(s) < required "
            f"{args.min_preemptions}"
        )
    if failures:
        for failure in failures:
            print(f"fleet: FAIL: {failure}", file=sys.stderr)
        return 1
    print("verdict         : fleet bench gates passed")
    return 0


def _live_engine_plan():
    """Train the tiny pipelined workload and return (plan, gpu_budget).

    The returned plan is ``engine.executed_plan()`` — the exact object
    the live prefetch worker consumed, not a re-plan — so the verifier
    certifies what actually ran.
    """
    from repro.engine.angel import AngelConfig
    from repro.fleet.factory import JobFactory

    factory = JobFactory()
    config = AngelConfig(
        gpu_memory_bytes=4 * MiB, cpu_memory_bytes=64 * MiB,
        page_bytes=64 * KiB, pipeline=True,
    )
    with factory.engine(config) as engine:
        for batch in factory.batches(3):
            loss = engine(batch)
            engine.backward(loss)
            engine.step()
        return engine.executed_plan(), config.gpu_memory_bytes


def _check_schedule(args: argparse.Namespace, payload: dict) -> int:
    """Prong 1: statically verify the Algorithm-1 schedule."""
    from repro.analysis.verifier import verify_plan

    if args.live:
        plan, gpu_budget = _live_engine_plan()
        workload = "live functional engine (pipelined)"
    else:
        from repro.hardware.cluster import a100_cluster
        from repro.models import get_model
        from repro.scheduler.unified import UnifiedScheduler

        scheduler = UnifiedScheduler(a100_cluster(args.servers))
        plan = scheduler.plan(
            get_model(args.model), args.batch, seq_len=args.seq_len
        )
        gpu_budget = scheduler.gpu_budget
        workload = (f"{args.model}, {args.servers} server(s), "
                    f"micro-batch {args.batch}")
    result = verify_plan(plan, gpu_budget)
    payload["schedule"] = result.to_dict()
    if not args.json:
        print(f"schedule check  : {workload}")
        print(f"  {result.summary()}")
        for violation in result.violations:
            print(f"  [{violation.invariant}] trigger "
                  f"{violation.trigger_id}: {violation.message}")
            for trigger, event in violation.provenance:
                print(f"      provenance: trigger {trigger}: {event}")
    return 0 if result.ok else 1


def _print_violations(result) -> None:
    for violation in result.violations:
        print(f"  [{violation.invariant}] trigger "
              f"{violation.trigger_id}: {violation.message}")
        for trigger, event in violation.provenance:
            print(f"      provenance: trigger {trigger}: {event}")


def _check_protocol(args: argparse.Namespace, payload: dict) -> int:
    """Prong 3: model-check the coordinator membership protocol."""
    from repro.analysis.protocol import ProtocolConfig, explore_protocol

    config = ProtocolConfig(world_size=args.workers)
    result = explore_protocol(depth=args.depth, config=config)
    payload["protocol"] = result.to_dict()
    if not args.json:
        stats = result.stats
        print(f"protocol check  : {result.model_name}")
        print(f"  {result.summary()} ({stats['states']} states, "
              f"{stats['transitions']} transitions explored, "
              f"{stats['terminal_complete']} complete terminal state(s))")
        _print_violations(result)
    return 0 if result.ok else 1


def _check_cluster(args: argparse.Namespace, payload: dict) -> int:
    """Prong 4: replay a real cluster workdir against the protocol."""
    from repro.analysis.protocol import verify_cluster_workdir

    result = verify_cluster_workdir(args.cluster)
    payload["cluster"] = result.to_dict()
    if not args.json:
        stats = result.stats
        print(f"cluster check   : {args.cluster}")
        print(f"  {result.summary()} ({stats['membership_events']} "
              f"membership event(s), {stats['rank_streams']} rank "
              f"stream(s), {stats['collectives_observed']} collective(s))")
        _print_violations(result)
    return 0 if result.ok else 1


def _check_self(args: argparse.Namespace, payload: dict) -> int:
    """Prong 2: concurrency-lint the repo against the baseline."""
    from pathlib import Path

    import repro
    from repro.analysis.baseline import (
        DEFAULT_BASELINE_NAME, compare, load_baseline, save_baseline,
    )
    from repro.analysis.lint import lint_tree

    root = Path(repro.__file__).parent
    baseline_path = (
        Path(args.baseline) if args.baseline
        else _repo_root() / DEFAULT_BASELINE_NAME
    )
    findings = lint_tree(root)
    if args.update_baseline:
        save_baseline(baseline_path, findings, load_baseline(baseline_path))
        if not args.json:
            print(f"self check      : baseline updated with "
                  f"{len(findings)} finding(s) -> {baseline_path}")
        payload["self"] = {
            "updated": True,
            "findings": [f.to_dict() for f in findings],
        }
        return 0
    verdict = compare(findings, load_baseline(baseline_path))
    payload["self"] = {
        "new": [f.to_dict() for f in verdict["new"]],
        "accepted": [f.fingerprint for f in verdict["accepted"]],
        "resolved": verdict["resolved"],
    }
    if not args.json:
        print(f"self check      : {len(findings)} finding(s), "
              f"{len(verdict['accepted'])} accepted by baseline, "
              f"{len(verdict['new'])} new")
        for finding in verdict["new"]:
            print(f"  [{finding.rule}] {finding.path}: {finding.subject}")
            print(f"      {finding.message}")
        for fingerprint in verdict["resolved"]:
            print(f"  resolved (prune from baseline): {fingerprint}")
    return 0 if not verdict["new"] else 1


def _cmd_check(args: argparse.Namespace) -> int:
    import json

    # No explicit prong selected: run every workdir-free prong (the CI
    # gate's default). --cluster needs a finished run, so it only ever
    # runs when asked for.
    explicit = (
        args.self_lint or args.schedule or args.protocol
        or bool(args.cluster)
    )
    run_self = args.self_lint or not explicit
    run_schedule = args.schedule or not explicit
    run_protocol = args.protocol or not explicit
    payload: dict = {}
    status = 0
    if run_self:
        status = max(status, _check_self(args, payload))
    if run_schedule:
        status = max(status, _check_schedule(args, payload))
    if run_protocol:
        status = max(status, _check_protocol(args, payload))
    if args.cluster:
        status = max(status, _check_cluster(args, payload))
    if args.json:
        print(json.dumps(payload, indent=2))
    elif status == 0:
        print("check           : OK")
    else:
        print("check           : FAILED", file=sys.stderr)
    return status


def _cmd_report_build(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.observe.report import load_payload, write_report

    bench_path = Path(args.bench)
    if not bench_path.exists():
        print(f"report: no such file {bench_path}", file=sys.stderr)
        return 2
    bench = load_payload(bench_path)
    trace = load_payload(args.trace) if args.trace else None
    out = Path(args.out) if args.out else bench_path.parent / "run_report.md"
    written = write_report(bench, out, trace=trace, html=args.html)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_report_compare(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.observe.report import compare, format_compare, load_payload

    for path in (args.baseline, args.current):
        if not Path(path).exists():
            print(f"report: no such file {path}", file=sys.stderr)
            return 2
    result = compare(
        load_payload(args.baseline), load_payload(args.current),
        threshold=args.threshold,
    )
    print(format_compare(result))
    return 0 if result["ok"] else 1


def _run_cluster_scenario(config, workdir: str | None, tolerance: float,
                          report_path: str | None = None,
                          prog: str = "cluster") -> int:
    """Run an elastic process-cluster scenario and gate on the outcome.

    Shared by ``repro cluster`` and ``repro chaos --kill-rank``: runs the
    fault-free sequential reference, then the real multi-process run, and
    returns non-zero unless the run completed every step and its losses
    track the reference within ``tolerance``.
    """
    import json
    import tempfile

    from repro.cluster import run_cluster, run_cluster_reference
    from repro.telemetry import Telemetry

    workdir = workdir or tempfile.mkdtemp(prefix="repro-cluster-")
    reference = run_cluster_reference(config)
    telemetry = Telemetry()
    report = run_cluster(config, workdir, telemetry=telemetry)

    print(f"workers         : {config.world_size} process(es), "
          f"{config.steps} steps")
    print(f"complete        : {report.complete}")
    print(f"generations     : {report.generations} "
          f"(evictions {report.evictions}, respawns {report.respawns})")
    print(f"final world     : {report.final_world}")
    print(f"steps completed : {report.steps_completed}/{config.steps}")
    print("membership log  :")
    for event in report.events:
        detail = {k: v for k, v in event.items()
                  if k not in ("type", "time", "generation")}
        print(f"  gen {event.get('generation', '?')}: "
              f"{event['type']} {detail}")
    if report.alerts:
        print("watchdog alerts :")
        for alert in report.alerts:
            print(f"  [{alert.severity.name}] {alert.rule} "
                  f"@ step {alert.step}: {alert.message}")

    failures = []
    if not report.complete:
        failures.append("run did not complete")
    if report.steps_completed < config.steps:
        failures.append(
            f"only {report.steps_completed}/{config.steps} steps finished"
        )
    delta = None
    if report.losses and len(report.losses) == len(reference):
        delta = max(abs(a - b) for a, b in zip(reference, report.losses))
        print(f"final loss      : {report.losses[-1]:.4f} "
              f"(fault-free {reference[-1]:.4f}, max |delta| {delta:.2e})")
        if delta > tolerance:
            failures.append(
                f"diverged from reference: max |delta| {delta:.2e} "
                f"> tolerance {tolerance:.2e}"
            )
    elif not failures:
        failures.append("no losses reported")

    if report_path:
        payload = report.to_dict()
        payload["reference"] = reference
        payload["tolerance"] = tolerance
        payload["max_delta"] = delta
        payload["failures"] = failures
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"report          : {report_path}")

    if failures:
        for failure in failures:
            print(f"{prog}: FAIL: {failure}", file=sys.stderr)
        return 1
    print("verdict         : recovered, losses match reference")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterConfig

    if args.steps < 1:
        print("cluster: --steps must be >= 1", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("cluster: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.kill_rank is not None and not 0 <= args.kill_rank < args.workers:
        print("cluster: --kill-rank must name a worker slot", file=sys.stderr)
        return 2
    config = ClusterConfig(
        world_size=args.workers,
        steps=args.steps,
        checkpoint_every=args.ckpt_every,
        seed=args.seed,
        layers=args.layers,
        kill_rank=args.kill_rank,
        kill_at_step=args.at_step if args.at_step is not None
        else args.steps // 2,
        step_delay=args.step_delay,
        rendezvous_grace=args.grace,
        run_timeout=args.timeout,
    )
    return _run_cluster_scenario(
        config, args.workdir, args.tolerance, report_path=args.report
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from repro.resilience import AvailabilityModel, ChaosConfig, run_chaos, run_reference
    from repro.telemetry import Telemetry

    if args.steps < 1:
        print("chaos: --steps must be >= 1", file=sys.stderr)
        return 2
    if args.ckpt_every < 1:
        print("chaos: --ckpt-every must be >= 1", file=sys.stderr)
        return 2
    if args.kill_rank is not None:
        # Process-cluster chaos: SIGKILL a real worker mid-step and
        # demand full recovery (the elastic rendezvous path).
        from repro.cluster import ClusterConfig

        if not 0 <= args.kill_rank < args.workers:
            print("chaos: --kill-rank must name a worker slot",
                  file=sys.stderr)
            return 2
        config = ClusterConfig(
            world_size=args.workers,
            steps=args.steps,
            checkpoint_every=args.ckpt_every,
            seed=args.seed,
            layers=args.layers,
            kill_rank=args.kill_rank,
            kill_at_step=args.at_step if args.at_step is not None
            else args.steps // 2,
        )
        return _run_cluster_scenario(
            config, args.workdir, args.tolerance, prog="chaos"
        )
    config = ChaosConfig(
        steps=args.steps,
        checkpoint_every=args.ckpt_every,
        seed=args.seed,
        layers=args.layers,
        transient_read_rate=args.transient_rate,
        transient_write_rate=args.transient_rate,
        max_transients=args.max_transients,
        torn_write_rate=args.torn_rate,
        max_torn_writes=args.max_torn,
        die_after_ops=args.tier_death_after,
        rank_failure_at_step=args.rank_failure_at,
        world_size=args.world_size,
    )
    reference = run_reference(
        ChaosConfig(steps=args.steps, checkpoint_every=args.ckpt_every,
                    seed=args.seed, layers=args.layers)
    )
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    telemetry = Telemetry()
    report = run_chaos(config, workdir, telemetry=telemetry)
    print(f"steps completed : {report.steps_completed} "
          f"({report.step_attempts} attempts)")
    print(f"world size      : {config.world_size} -> {report.final_world_size}")
    print(f"degraded to CPU : {report.degraded}")
    print(f"recoveries at   : {report.recovery_steps or '-'}")
    print("injected faults :")
    for record in report.fault_log:
        detail = f" ({record.detail})" if record.detail else ""
        print(f"  op {record.op_index:6d}  {record.kind.value:<16} "
              f"{record.tier}{detail}")
    if not report.fault_log:
        print("  (none)")
    # Fault counters and retry latencies share one registry; dump the
    # unified view (faults.*, retry.* and anything else that moved).
    dump = telemetry.dump()["metrics"]
    print("unified metrics :")
    for name, value in sorted(dump["counters"].items()):
        if value:
            print(f"  {name:<24} {value}")
    for name, summary in sorted(dump["histograms"].items()):
        print(f"  {name:<24} n={summary['count']} "
              f"mean={summary['mean']:.2e}s p95={summary['p95']:.2e}s")
    if report.alerts:
        print("watchdog alerts :")
        for alert in report.alerts:
            print(f"  [{alert.severity.name}] {alert.rule} "
                  f"@ step {alert.step}: {alert.message}")
    if report.recommendations:
        print("recommendations :")
        for recommendation in report.recommendations:
            print(f"  {recommendation}")
    delta = abs(report.final_loss - reference[-1])
    print(f"final loss      : {report.final_loss:.4f} "
          f"(fault-free {reference[-1]:.4f}, |delta| {delta:.4f})")
    model = AvailabilityModel(
        iteration_time=args.iteration_time,
        checkpoint_time=args.checkpoint_time,
        restart_time=args.restart_time,
        mtbf=args.mtbf,
    )
    interval = model.optimal_checkpoint_interval()
    print(f"Young/Daly      : checkpoint every {interval:.0f}s "
          f"(= {model.optimal_checkpoint_every()} steps at "
          f"{args.iteration_time:.0f}s/step), "
          f"efficiency {model.efficiency(interval):.1%}")
    failures = []
    if report.steps_completed < args.steps:
        failures.append(
            f"unhealed faults: only {report.steps_completed}/{args.steps} "
            "steps completed"
        )
    if delta > args.tolerance:
        failures.append(
            f"diverged from reference: |delta| {delta:.4f} "
            f"> tolerance {args.tolerance:.4f}"
        )
    if failures:
        for failure in failures:
            print(f"chaos: FAIL: {failure}", file=sys.stderr)
        return 1
    print("verdict         : healed, losses match reference")
    return 0


def _cmd_trace_collect(args: argparse.Namespace) -> int:
    import os

    from repro.telemetry.collect import TraceCollector

    if not os.path.isdir(args.workdir):
        print(f"trace: no such workdir {args.workdir}", file=sys.stderr)
        return 2
    collected = TraceCollector(args.workdir).collect()
    out = args.out or os.path.join(args.workdir, "cluster_trace.json")
    rollup_path = args.rollup or os.path.join(
        args.workdir, "telemetry_rollup.json"
    )
    collected.save(out, rollup_path)
    print(f"streams         : {len(collected.streams)} "
          f"({collected.skipped_lines} truncated line(s) skipped)")
    print(f"rank lanes      : "
          f"{', '.join(collected.rank_lanes) or '(none)'}")
    for source, info in sorted(
        collected.rollup.get("per_source", {}).items()
    ):
        print(f"  {source:<14} role={info['role']:<10} "
              f"last_step={info['last_step']} align={info['alignment']}")
    traffic = collected.rollup.get("tenant_traffic") or {}
    if traffic:
        print("tenant traffic  :")
        for tenant, bucket in traffic.items():
            print(f"  {tenant:<8} "
                  f"{bucket['pages_moved_bytes'] / MiB:8.2f} MiB moved "
                  f"over {bucket['jobs']} job stream(s)")
    print(f"wrote           : {out}")
    print(f"wrote           : {rollup_path}")
    if len(collected.rank_lanes) < args.min_rank_lanes:
        print(f"trace: FAIL: only {len(collected.rank_lanes)} rank "
              f"lane(s), need >= {args.min_rank_lanes}", file=sys.stderr)
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import os
    import time

    from repro.telemetry.collect import render_top, tail_state

    if not os.path.isdir(args.workdir):
        print(f"top: no such workdir {args.workdir}", file=sys.stderr)
        return 2
    try:
        while True:
            state = tail_state(args.workdir)
            if not args.once:
                # Clear screen + home, like top(1); skipped in --once
                # mode so CI logs stay readable.
                print("\x1b[2J\x1b[H", end="")
            print(render_top(state))
            if args.once:
                return 0
            time.sleep(args.refresh)
    except KeyboardInterrupt:
        return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import repro.experiments as experiments

    name = args.name.replace("-", "_")
    if name not in experiments.__all__:
        print(f"unknown experiment {args.name!r}; choose from: "
              f"{', '.join(experiments.__all__)}", file=sys.stderr)
        return 2
    module = getattr(experiments, name)
    print(module.format_report(module.run()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Angel-PTM reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the Table 4 model zoo").set_defaults(
        func=_cmd_models
    )

    plan = sub.add_parser("plan", help="max model scale / batch for a cluster")
    plan.add_argument("--model", default="gpt3-28b")
    plan.add_argument("--servers", type=int, default=1)
    plan.add_argument("--cluster", help="JSON cluster description (see hardware.config_io)")
    plan.add_argument("--seq-len", type=int, default=2048)
    plan.add_argument("--ssd", action="store_true")
    plan.set_defaults(func=_cmd_plan)

    simulate = sub.add_parser("simulate", help="simulate one training iteration")
    simulate.add_argument("--model", default="gpt3-13b")
    simulate.add_argument("--servers", type=int, default=1)
    simulate.add_argument("--cluster", help="JSON cluster description (see hardware.config_io)")
    simulate.add_argument("--batch", type=int, default=4)
    simulate.add_argument("--seq-len", type=int, default=2048)
    simulate.add_argument("--ssd", action="store_true")
    simulate.add_argument("--lock-free", action="store_true")
    simulate.set_defaults(func=_cmd_simulate)

    train = sub.add_parser("train", help="functional training demo (Figure 6)")
    train.add_argument("--steps", type=int, default=100)
    train.add_argument("--layers", type=int, default=2)
    train.add_argument("--lr", type=float, default=2e-3)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--gpu-mib", type=int, default=4)
    train.add_argument("--ssd", action="store_true")
    train.add_argument("--lock-free", action="store_true")
    train.add_argument("--pipeline", action="store_true",
                       help="schedule-driven async prefetch + writeback "
                            "after the recording iteration")
    train.set_defaults(func=_cmd_train)

    chaos = sub.add_parser(
        "chaos", help="chaos-test the functional engine (fault injection)"
    )
    chaos.add_argument("--steps", type=int, default=10)
    chaos.add_argument("--layers", type=int, default=2)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--ckpt-every", type=int, default=3)
    chaos.add_argument("--world-size", type=int, default=2)
    chaos.add_argument("--transient-rate", type=float, default=0.005,
                       help="per-I/O transient fault probability on the SSD tier")
    chaos.add_argument("--max-transients", type=int, default=8)
    chaos.add_argument("--torn-rate", type=float, default=0.002)
    chaos.add_argument("--max-torn", type=int, default=2)
    chaos.add_argument("--tier-death-after", type=int, default=None,
                       help="kill the SSD tier permanently after N I/O ops")
    chaos.add_argument("--rank-failure-at", type=int, default=None,
                       help="crash a rank at this step (restore from checkpoint)")
    chaos.add_argument("--workdir", default=None,
                       help="checkpoint directory (default: fresh temp dir)")
    chaos.add_argument("--tolerance", type=float, default=0.05,
                       help="max |final loss - reference| before exit 1")
    chaos.add_argument("--kill-rank", type=int, default=None,
                       help="SIGKILL this worker slot in a real "
                            "multi-process cluster run")
    chaos.add_argument("--at-step", type=int, default=None,
                       help="step at which --kill-rank fires "
                            "(default: steps // 2)")
    chaos.add_argument("--workers", type=int, default=3,
                       help="process count for --kill-rank mode")
    chaos.add_argument("--iteration-time", type=float, default=60.0,
                       help="per-step seconds for the Young/Daly summary")
    chaos.add_argument("--checkpoint-time", type=float, default=120.0)
    chaos.add_argument("--restart-time", type=float, default=300.0)
    chaos.add_argument("--mtbf", type=float, default=12 * 3600.0)
    chaos.set_defaults(func=_cmd_chaos)

    cluster = sub.add_parser(
        "cluster",
        help="elastic multi-process training with rendezvous + heartbeats",
    )
    cluster.add_argument("--workers", type=int, default=3)
    cluster.add_argument("--steps", type=int, default=12)
    cluster.add_argument("--ckpt-every", type=int, default=3)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--layers", type=int, default=2)
    cluster.add_argument("--kill-rank", type=int, default=None,
                         help="SIGKILL this worker slot mid-step")
    cluster.add_argument("--at-step", type=int, default=None,
                         help="step at which --kill-rank fires")
    cluster.add_argument("--step-delay", type=float, default=0.0,
                         help="artificial per-step duration (seconds)")
    cluster.add_argument("--grace", type=float, default=1.0,
                         help="rendezvous straggler grace window (seconds)")
    cluster.add_argument("--timeout", type=float, default=120.0,
                         help="hard wall-clock limit for the whole run")
    cluster.add_argument("--tolerance", type=float, default=0.05,
                         help="max loss delta vs fault-free reference")
    cluster.add_argument("--workdir", default=None,
                         help="checkpoint + event-log directory")
    cluster.add_argument("--report", default=None,
                         help="write a JSON run report to this path")
    cluster.set_defaults(func=_cmd_cluster)

    profile = sub.add_parser(
        "profile",
        help="profile the functional engine; writes BENCH_telemetry.json "
             "and a Chrome trace",
    )
    profile.add_argument("--steps", type=int, default=10)
    profile.add_argument("--layers", type=int, default=2)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--lock-free", action="store_true")
    profile.add_argument("--pipeline", action="store_true",
                         help="drive the main profiled run through the "
                              "pipelined runtime")
    profile.add_argument("--no-overhead", action="store_true",
                         help="skip the telemetry-disabled comparison run")
    profile.add_argument("--no-compare", action="store_true",
                         help="skip the pipeline-on vs pipeline-off "
                              "SSD-tier comparison runs")
    profile.add_argument("--no-watch", action="store_true",
                         help="disable the step-boundary watchdog")
    profile.add_argument("--outdir", default=None,
                         help="where BENCH_telemetry.json and the trace go "
                              "(default: the repo root)")
    profile.add_argument("--report", action="store_true",
                         help="also render run_report.md / .html from the run")
    profile.set_defaults(func=_cmd_profile)

    check = sub.add_parser(
        "check",
        help="static analysis: schedule verifier, concurrency lint, "
             "protocol model checker, cluster replay (repro.analysis)",
    )
    check.add_argument("--self", dest="self_lint", action="store_true",
                       help="concurrency-lint the repro sources against the "
                            "checked-in baseline")
    check.add_argument("--schedule", action="store_true",
                       help="statically verify the Algorithm-1 schedule for "
                            "the selected workload")
    check.add_argument("--live", action="store_true",
                       help="with --schedule: verify the plan the live "
                            "pipelined engine actually executed, instead of "
                            "a simulated workload's")
    check.add_argument("--model", default="gpt3-13b",
                       help="model-zoo name for --schedule (default: the "
                            "bench workload)")
    check.add_argument("--servers", type=int, default=1)
    check.add_argument("--batch", type=int, default=4)
    check.add_argument("--seq-len", type=int, default=2048)
    check.add_argument("--protocol", action="store_true",
                       help="model-check the coordinator membership "
                            "protocol: exhaustive bounded-depth exploration "
                            "against the invariant catalog")
    check.add_argument("--depth", type=int, default=6,
                       help="exploration depth for --protocol (actions per "
                            "interleaving, default 6)")
    check.add_argument("--workers", type=int, default=2,
                       help="modelled world size for --protocol (default 2)")
    check.add_argument("--cluster", default=None, metavar="WORKDIR",
                       help="replay a finished cluster run's membership log "
                            "and per-rank telemetry against the fencing and "
                            "collective-agreement invariants")
    check.add_argument("--baseline", default=None,
                       help="lint baseline path (default: "
                            "concurrency_baseline.json at the repo root)")
    check.add_argument("--update-baseline", action="store_true",
                       help="accept the current lint findings as the baseline")
    check.add_argument("--json", action="store_true",
                       help="print the machine-readable result instead")
    check.set_defaults(func=_cmd_check)

    fleet = sub.add_parser(
        "fleet", help="multi-tenant control plane (repro.fleet)"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_bench = fleet_sub.add_parser(
        "bench",
        help="run the deterministic fleet benchmark -> BENCH_fleet.json",
    )
    fleet_bench.add_argument("--seed", type=int, default=7,
                             help="traffic seed (default 7, the CI stream)")
    fleet_bench.add_argument("--jobs", type=int, default=12,
                             help="jobs in the generated traffic stream")
    fleet_bench.add_argument("--nodes", type=int, default=2,
                             help="simulated nodes in the fleet")
    fleet_bench.add_argument("--workdir", default=None,
                             help="directory for preemption snapshots "
                                  "(default: fresh temp dir)")
    fleet_bench.add_argument("--outdir", default=None,
                             help="where BENCH_fleet.json lands "
                                  "(default: repo root)")
    fleet_bench.add_argument("--report", action="store_true",
                             help="also render fleet_run_report.md/.html")
    fleet_bench.add_argument("--min-preemptions", type=int, default=0,
                             help="fail unless at least this many "
                                  "preemptions occurred")
    fleet_bench.set_defaults(func=_cmd_fleet_bench)

    report = sub.add_parser(
        "report", help="render or compare run reports (repro.observe)"
    )
    report_sub = report.add_subparsers(dest="report_command", required=True)
    build = report_sub.add_parser(
        "build", help="merge BENCH payload + trace into one run report"
    )
    build.add_argument("--bench", default="BENCH_telemetry.json",
                       help="BENCH_telemetry.json payload to render")
    build.add_argument("--trace", default=None,
                       help="optional Chrome trace to summarize alongside")
    build.add_argument("--out", default=None,
                       help="output markdown path (default: run_report.md "
                            "next to the bench payload)")
    build.add_argument("--html", action="store_true",
                       help="also write a self-contained .html next to the .md")
    build.set_defaults(func=_cmd_report_build)
    compare = report_sub.add_parser(
        "compare", help="flag metric regressions between two BENCH payloads"
    )
    compare.add_argument("baseline")
    compare.add_argument("current")
    compare.add_argument("--threshold", type=float, default=0.05,
                         help="relative change beyond which a metric is "
                              "flagged (default 0.05)")
    compare.set_defaults(func=_cmd_report_compare)

    top = sub.add_parser(
        "top",
        help="live text dashboard tailing a run's telemetry streams",
    )
    top.add_argument("workdir",
                     help="run workdir containing a telemetry/ directory")
    top.add_argument("--refresh", type=float, default=1.0,
                     help="seconds between redraws (default 1.0)")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (CI / tests)")
    top.set_defaults(func=_cmd_top)

    trace = sub.add_parser(
        "trace",
        help="distributed trace collection (repro.telemetry.collect)",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_collect = trace_sub.add_parser(
        "collect",
        help="merge per-process event streams into one Chrome trace "
             "+ fleet-wide metrics rollup",
    )
    trace_collect.add_argument(
        "workdir", help="run workdir containing telemetry/ event files"
    )
    trace_collect.add_argument(
        "--out", default=None,
        help="merged Chrome trace path "
             "(default: <workdir>/cluster_trace.json)",
    )
    trace_collect.add_argument(
        "--rollup", default=None,
        help="merged metrics rollup path "
             "(default: <workdir>/telemetry_rollup.json)",
    )
    trace_collect.add_argument(
        "--min-rank-lanes", type=int, default=0,
        help="fail unless the merged trace has at least this many rank "
             "lanes (CI smoke gate)",
    )
    trace_collect.set_defaults(func=_cmd_trace_collect)

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("name", help="e.g. table5, figure8, ablation_page_size")
    experiment.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
