"""The invariant catalog and counterexample data model.

Every property the static verifier proves about an Algorithm-1 schedule
has a stable name here (the "invariant id" the docs, the CLI output and
the CI gate all refer to). A failed proof is reported as a
:class:`Violation` — a machine-readable counterexample carrying the
trigger id where the invariant breaks, the page/tensor involved and the
page's movement provenance, so a broken scheduler optimization explains
itself without ever running the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Schedule invariants (prong 1). See docs/static-analysis.md.
USE_BEFORE_FETCH = "use-before-fetch"
OOM_AT_TRIGGER = "oom-at-trigger"
EVICT_PINNED = "evict-pinned"
DOUBLE_MOVE = "double-move"
DOUBLE_FREE = "double-free"
GATHER_BEFORE_USE = "gather-before-use"
PAGE_SHARING = "page-sharing"
STALENESS_BOUND = "staleness-bound"

#: Canonical check order (also the order sections render in reports).
SCHEDULE_INVARIANTS = (
    USE_BEFORE_FETCH,
    OOM_AT_TRIGGER,
    EVICT_PINNED,
    DOUBLE_MOVE,
    DOUBLE_FREE,
    GATHER_BEFORE_USE,
    PAGE_SHARING,
    STALENESS_BOUND,
)

#: Concurrency lint rules (prong 2).
SHARED_STATE_RACE = "SA001"  # cross-thread attribute access, unmediated
LOCK_ORDER_CYCLE = "SA002"   # inconsistent nested lock-acquisition order
SPAWN_PICKLE = "SA003"       # thread/lock/telemetry state crossing a spawn
SHM_LIFECYCLE = "SA004"      # shared_memory created, never close+unlink'd
UNBOUNDED_RECV = "SA005"     # cross-process recv/wait with no timeout

LINT_RULES = (
    SHARED_STATE_RACE,
    LOCK_ORDER_CYCLE,
    SPAWN_PICKLE,
    SHM_LIFECYCLE,
    UNBOUNDED_RECV,
)

#: Membership-protocol invariants (prong 3, the coordinator model
#: checker). See docs/static-analysis.md for the catalog.
GENERATION_MONOTONIC = "generation-monotonic"
FENCE_NEVER_PATCH = "fence-never-patch"
UNIQUE_RANK_PER_SLOT = "unique-rank-per-slot"
BARRIER_RELEASE_FULL = "barrier-release-full"
NO_SPLIT_BRAIN = "no-split-brain"
INCARNATION_BUMP = "incarnation-bump"
RENDEZVOUS_CONVERGENCE = "rendezvous-convergence"
COMPLETE_IMPLIES_DONE = "complete-implies-done"

PROTOCOL_INVARIANTS = (
    GENERATION_MONOTONIC,
    FENCE_NEVER_PATCH,
    UNIQUE_RANK_PER_SLOT,
    BARRIER_RELEASE_FULL,
    NO_SPLIT_BRAIN,
    INCARNATION_BUMP,
    RENDEZVOUS_CONVERGENCE,
    COMPLETE_IMPLIES_DONE,
)

#: Multi-rank collective-schedule invariants (prong 3, planned ranks).
COLLECTIVE_ORDER = "collective-order"    # same op sequence on every rank
COLLECTIVE_SHAPE = "collective-shape"    # agreeing shard lengths
COLLECTIVE_WORLD = "collective-world"    # every rank plans the same world

COLLECTIVE_INVARIANTS = (
    COLLECTIVE_ORDER,
    COLLECTIVE_SHAPE,
    COLLECTIVE_WORLD,
)

#: Post-hoc cluster-workdir replay invariants (membership log + per-rank
#: telemetry streams from a real run).
FENCE_DISCIPLINE = "fence-discipline"        # eviction/retire implies fence
COLLECTIVE_AGREEMENT = "collective-agreement"  # executed sequences agree

CLUSTER_REPLAY_INVARIANTS = (
    GENERATION_MONOTONIC,
    UNIQUE_RANK_PER_SLOT,
    INCARNATION_BUMP,
    FENCE_DISCIPLINE,
    COMPLETE_IMPLIES_DONE,
    COLLECTIVE_AGREEMENT,
)


@dataclass(frozen=True)
class Violation:
    """One counterexample to one schedule invariant."""

    invariant: str
    trigger_id: int
    message: str
    layer_index: int = -1
    page_id: int = -1
    tensor_id: int = -1
    #: The page's movement history ``[(trigger_id, event), ...]`` up to
    #: the failure point — where the page came from and went.
    provenance: tuple = ()

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "trigger_id": self.trigger_id,
            "layer_index": self.layer_index,
            "page_id": self.page_id,
            "tensor_id": self.tensor_id,
            "message": self.message,
            "provenance": [list(event) for event in self.provenance],
        }


@dataclass
class VerificationResult:
    """Outcome of one symbolic schedule replay."""

    model_name: str
    violations: list[Violation] = field(default_factory=list)
    #: Invariants that were actually checked, in catalog order.
    invariants_checked: tuple = SCHEDULE_INVARIANTS
    #: Replay statistics (task/trigger counts, peak live bytes, budget).
    stats: dict = field(default_factory=dict)
    #: What was verified: "schedule" (symbolic replay), "protocol"
    #: (coordinator model exploration), "collective" (multi-rank plan
    #: agreement) or "cluster" (post-hoc workdir replay).
    kind: str = "schedule"

    @property
    def ok(self) -> bool:
        return not self.violations

    def of(self, invariant: str) -> list[Violation]:
        return [v for v in self.violations if v.invariant == invariant]

    def to_dict(self) -> dict:
        """The machine-readable payload (lands in BENCH_telemetry.json)."""
        return {
            "ok": self.ok,
            "kind": self.kind,
            "model": self.model_name,
            "invariants": [
                {"name": name, "violations": len(self.of(name))}
                for name in self.invariants_checked
            ],
            "violations": [v.to_dict() for v in self.violations],
            "stats": dict(self.stats),
        }

    def summary(self) -> str:
        """One line for CLI output and run reports."""
        if self.ok:
            return (
                f"{self.kind} verified: {len(self.invariants_checked)} "
                f"invariants, 0 violations"
            )
        worst = self.violations[0]
        return (
            f"{self.kind} INVALID: {len(self.violations)} violation(s), "
            f"first {worst.invariant} at trigger {worst.trigger_id}"
        )
