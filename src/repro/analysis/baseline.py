"""Checked-in lint baseline: accepted findings pass CI, regressions fail.

The baseline is a small JSON document committed at the repo root
(``concurrency_baseline.json``). Each entry records a finding
fingerprint (``rule:path:Class.attr`` — stable across line-number
churn) and a human reason why the pattern is accepted. ``repro check
--self`` compares the live lint run against it:

- a finding whose fingerprint is in the baseline is **accepted**;
- a finding not in the baseline is **new** and fails the gate;
- a baseline entry with no live finding is **resolved** (reported so
  the baseline can be pruned, but never a failure).

With the cross-process rules (SA003-SA005) the accepted entries fall
into three deliberate classes, each explained in its ``reason``:

- **interprocedural strips** the single-file AST cannot see — the
  supervisor builds ``replace(config, telemetry=None, sink=sink_spec)``
  in ``run_cluster()`` and only the stripped copy ever reaches
  ``_spawn_worker()``'s ``Process()`` call (SA003);
- **ownership-by-protocol** — shared-memory attachers never unlink
  because the creating rank does, after the drain barrier (SA004);
- **bounded-by-someone-else blocking** — worker/coordinator ``recv()``
  calls whose wait is bounded by pipe EOF on peer death, the
  coordinator's heartbeat eviction, and ultimately the supervisor's
  ``run_timeout`` SIGKILL; and in-process pipeline waits whose producer
  shares the process and is joined at ``close()`` (SA005).

New code should prefer the fixable patterns over new baseline entries:
``poll(timeout)`` before ``recv()`` (see ``_bounded_recv`` in the
supervisor), ``replace(...)`` strips before spawns, creator-side
``close()`` + ``unlink()`` for shared memory.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.lint import LintFinding
from repro.errors import ConfigurationError

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "concurrency_baseline.json"


def load_baseline(path: Path | str) -> dict[str, str]:
    """``{fingerprint: reason}`` from a baseline file; {} if absent."""
    path = Path(path)
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"baseline {path} is not valid JSON: {exc}")
    if payload.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"baseline {path} has version {payload.get('version')!r}, "
            f"expected {BASELINE_VERSION}"
        )
    accepted = {}
    for entry in payload.get("accepted", []):
        accepted[entry["fingerprint"]] = entry.get("reason", "")
    return accepted


def save_baseline(
    path: Path | str,
    findings: list[LintFinding],
    reasons: dict[str, str] | None = None,
) -> None:
    """Write the current findings as the accepted baseline.

    ``reasons`` (fingerprint -> text) lets ``--update-baseline`` keep
    the explanations already recorded for surviving entries.
    """
    reasons = reasons or {}
    entries = [
        {
            "fingerprint": finding.fingerprint,
            "reason": reasons.get(
                finding.fingerprint, "accepted: " + finding.message
            ),
        }
        for finding in sorted(findings, key=lambda f: f.fingerprint)
    ]
    payload = {"version": BASELINE_VERSION, "accepted": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def compare(
    findings: list[LintFinding], baseline: dict[str, str]
) -> dict[str, list]:
    """Split live findings into new vs accepted, and list resolved entries."""
    live = {finding.fingerprint for finding in findings}
    return {
        "new": [f for f in findings if f.fingerprint not in baseline],
        "accepted": [f for f in findings if f.fingerprint in baseline],
        "resolved": sorted(fp for fp in baseline if fp not in live),
    }
