"""AST concurrency lint over the repo's own sources.

The lock-free updater (:mod:`repro.lockfree.threaded`) and the event-bus
callbacks (:mod:`repro.runtime.events`) are the two places where code in
this repo runs off the trainer thread — exactly where PatrickStar-style
systems historically grew unguarded cross-thread state. This linter
builds a **thread-role map** per class and flags:

- ``SA001`` *shared-state race* — an instance attribute written outside
  ``__init__`` whose unmediated accesses span more than one thread role
  (trainer thread vs. a ``threading.Thread`` target vs. an event-bus
  callback). Mediation means the access happens under a held lock
  (``with self._lock:``) or the attribute is itself a thread-safe object
  (Lock/Event/Queue, a telemetry gauge/counter/histogram, the per-param
  locked :class:`~repro.lockfree.buffers.GradientBuffers`).
- ``SA002`` *lock-order cycle* — two locks acquired nested in opposite
  orders somewhere in the tree (the classic ABBA deadlock).

Three cross-*process* rules extend the catalog to the cluster layer
(PR 6-8), where the hazards move from threads to spawn boundaries,
shared memory and blocking pipes:

- ``SA003`` *spawn-boundary pickling* — a config object whose class
  declares a thread/lock/telemetry-typed field reaches a
  ``Process(args=...)`` spawn without that field being stripped via
  ``dataclasses.replace(...)`` first. This is exactly the bug class the
  telemetry export work fixed by hand with the picklable ``SinkSpec``.
- ``SA004`` *shared-memory lifecycle* — a scope creates or attaches a
  ``SharedMemory`` segment but never calls both ``close()`` and
  ``unlink()``, leaking the segment past the process's life.
- ``SA005`` *unbounded blocking receive* — a cross-process ``recv()``
  with no ``poll()`` guard in the same method, or a ``wait()``/
  ``wait_for()``/``join()`` with no timeout: one lost peer turns it
  into a distributed deadlock.

Classes that never start a thread are single-threaded by construction
and are skipped by SA001. Findings carry a stable fingerprint
(``rule:path:subject`` — no line numbers) so the checked-in baseline
survives unrelated edits; ``repro check --self`` fails CI only on
fingerprints not in the baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.invariants import (
    LOCK_ORDER_CYCLE,
    SHARED_STATE_RACE,
    SHM_LIFECYCLE,
    SPAWN_PICKLE,
    UNBOUNDED_RECV,
)

#: Field types that must not cross a ``Process`` spawn boundary without
#: being stripped first (``dataclasses.replace(cfg, field=None, ...)``).
#: Live threads, locks and telemetry registries either fail to pickle
#: outright or arrive in the child as dead clones.
UNPICKLABLE_TYPES = frozenset({
    "Thread", "Lock", "RLock", "Condition", "Event", "Semaphore",
    "BoundedSemaphore", "Barrier", "Queue", "SimpleQueue", "Connection",
    "Listener", "TelemetryLike", "Telemetry", "EventBus",
})

#: Blocking receive calls on a cross-process pipe; a ``poll(timeout)``
#: call in the same method is the sanctioned guard.
RECV_CALLS = frozenset({"recv", "recv_bytes"})

#: Constructors whose instances are considered thread-safe mediation.
MEDIATED_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "Barrier", "Queue", "SimpleQueue", "LifoQueue", "PriorityQueue",
    "GradientBuffers",
    # telemetry registry instruments are internally locked
    "gauge", "counter", "histogram",
})

#: Constructors that make an attribute usable as a ``with``-lock.
LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore"})

#: The role of code reachable only from EventBus callback registration.
CALLBACK_ROLE = "callback"
MAIN_ROLE = "main"


@dataclass(frozen=True)
class LintFinding:
    """One concurrency finding with a baseline-stable fingerprint."""

    rule: str
    path: str      # repo-relative posix path
    subject: str   # "Class.attr" or the lock cycle "a->b->a"
    message: str
    roles: tuple = ()
    lines: tuple = ()

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}:{self.path}:{self.subject}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "subject": self.subject,
            "message": self.message,
            "roles": list(self.roles),
            "lines": list(self.lines),
            "fingerprint": self.fingerprint,
        }


@dataclass
class _Access:
    """One ``self.attr`` read or write inside a method."""

    attr: str
    kind: str  # "read" | "write"
    method: str
    line: int
    mediated: bool


@dataclass
class _ClassInfo:
    name: str
    #: method -> methods it calls on self
    calls: dict = field(default_factory=dict)
    #: methods passed as ``threading.Thread(target=self.m)``
    thread_entries: set = field(default_factory=set)
    #: methods registered as EventBus callbacks (on_complete / when_all)
    callback_methods: set = field(default_factory=set)
    accesses: list = field(default_factory=list)
    #: attrs assigned in __init__ from a mediated constructor
    mediated_attrs: set = field(default_factory=set)
    #: attrs usable as ``with self.x:`` locks
    lock_attrs: set = field(default_factory=set)
    #: nested lock acquisitions: (outer, inner) attr pairs
    lock_edges: list = field(default_factory=list)


def _call_name(node: ast.expr) -> str | None:
    """Trailing name of a call target: ``threading.Thread`` -> 'Thread'."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _self_attr(node: ast.expr) -> str | None:
    """'x' for ``self.x`` (also unwraps ``self.x[i]``), else None."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ClassScanner:
    """Extracts the per-class facts the role map is built from."""

    def __init__(self, class_node: ast.ClassDef):
        self.info = _ClassInfo(name=class_node.name)
        self._init_lines = _init_assignment_lines(class_node)
        for item in class_node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_method(item)

    def _scan_method(self, method: ast.FunctionDef) -> None:
        info = self.info
        info.calls.setdefault(method.name, set())
        in_init = method.name == "__init__"
        self._walk(method.body, method, in_init, lock_stack=[])

    def _walk(self, body, method, in_init: bool, lock_stack: list) -> None:
        for node in body:
            self._visit(node, method, in_init, lock_stack)

    def _visit(self, node, method, in_init: bool, lock_stack: list) -> None:
        info = self.info
        if isinstance(node, ast.With):
            held = []
            for item in node.items:
                lock = _self_attr(item.context_expr)
                if lock is not None and self._is_lockish(lock):
                    if lock_stack:
                        info.lock_edges.append(
                            (lock_stack[-1], lock, node.lineno)
                        )
                    held.append(lock)
                else:
                    # Non-lock context (telemetry span etc.): recurse into
                    # the expression for accesses, but no mediation.
                    self._visit_expr(item.context_expr, method, in_init, lock_stack)
            self._walk(node.body, method, in_init, lock_stack + held)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested closure: runs on whatever thread calls it; keep the
            # enclosing method's role by scanning inline.
            self._walk(node.body, method, in_init, lock_stack)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, method, in_init, lock_stack)
        self._record(node, method, in_init, bool(lock_stack))

    def _visit_expr(self, node, method, in_init, lock_stack) -> None:
        for child in ast.walk(node):
            self._record(child, method, in_init, bool(lock_stack))

    def _record(self, node, method, in_init: bool, mediated: bool) -> None:
        info = self.info
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is None:
                return
            kind = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
            if in_init and kind == "write":
                return  # publish before thread start: safe by convention
            info.accesses.append(_Access(
                attr=attr, kind=kind, method=method.name,
                line=node.lineno, mediated=mediated,
            ))
        elif isinstance(node, ast.Call):
            self._record_call(node, method, in_init)

    def _record_call(self, node: ast.Call, method, in_init: bool) -> None:
        info = self.info
        name = _call_name(node.func)
        # threading.Thread(target=self.m) -> thread entry method
        if name == "Thread":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    target = _self_attr(keyword.value)
                    if target is not None:
                        info.thread_entries.add(target)
        # bus.when_all([...], self.m) / event.on_complete(self.m)
        if name in {"on_complete", "when_all"}:
            args = list(node.args)
            for arg in args:
                target = _self_attr(arg)
                if target is not None:
                    info.callback_methods.add(target)
        # self.m(...) -> intra-class call edge
        target = _self_attr(node.func)
        if target is not None:
            info.calls.setdefault(method.name, set()).add(target)
        # __init__ assignments of mediated / lock constructors
        if in_init and name in MEDIATED_CONSTRUCTORS:
            parent_attr = self._assigned_attr(node)
            if parent_attr is not None:
                info.mediated_attrs.add(parent_attr)
                if name in LOCK_CONSTRUCTORS:
                    info.lock_attrs.add(parent_attr)

    def _assigned_attr(self, call: ast.Call) -> str | None:
        """The ``self.x`` an ``__init__`` constructor call is bound to.

        Matches ``self.x = Ctor()`` and ``self.x = [Ctor() ...]`` by the
        assignment's source line (init writes themselves are filtered
        out of the access list, so resolve syntactically).
        """
        return self._init_lines.get(call.lineno)

    def _is_lockish(self, attr: str) -> bool:
        return attr in self.info.lock_attrs or "lock" in attr.lower()


def _init_assignment_lines(class_node: ast.ClassDef) -> dict:
    """``{line: attr}`` for every ``self.attr = ...`` in ``__init__``."""
    lines: dict = {}
    for item in class_node.body:
        if not isinstance(item, ast.FunctionDef) or item.name != "__init__":
            continue
        for node in ast.walk(item):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        for sub in ast.walk(node):
                            if isinstance(sub, ast.Call):
                                lines[sub.lineno] = attr
    return lines


def _roles(info: _ClassInfo) -> dict:
    """Fixed-point thread-role propagation over the intra-class calls.

    Thread entry methods seed ``thread:<name>``; methods nobody calls
    seed ``main`` (public API runs on the trainer thread); EventBus
    callbacks add the ambiguous ``callback`` role. Roles flow from
    caller to callee until stable.
    """
    methods = set(info.calls)
    called = {callee for callees in info.calls.values() for callee in callees}
    roles: dict = {name: set() for name in methods}
    for name in methods:
        if name in info.thread_entries:
            roles[name].add(f"thread:{name}")
        elif name not in called:
            roles[name].add(MAIN_ROLE)
        if name in info.callback_methods:
            roles[name].add(CALLBACK_ROLE)
    changed = True
    while changed:
        changed = False
        for caller, callees in info.calls.items():
            for callee in callees:
                if callee not in roles:
                    continue
                if callee in info.thread_entries:
                    continue  # entry runs on its thread, not the caller's
                before = len(roles[callee])
                roles[callee] |= roles[caller]
                changed = changed or len(roles[callee]) != before
    return roles


def _race_findings(path: str, info: _ClassInfo) -> list[LintFinding]:
    if not info.thread_entries:
        return []  # single-threaded class: nothing can race
    roles = _roles(info)
    by_attr: dict = {}
    for access in info.accesses:
        by_attr.setdefault(access.attr, []).append(access)
    findings = []
    for attr, accesses in sorted(by_attr.items()):
        if attr in info.mediated_attrs or "lock" in attr.lower():
            continue
        unmediated = [a for a in accesses if not a.mediated]
        write_roles: set = set()
        all_roles: set = set()
        lines = []
        for access in unmediated:
            access_roles = roles.get(access.method, {MAIN_ROLE})
            all_roles |= access_roles
            if access.kind == "write":
                write_roles |= access_roles
                lines.append(access.line)
        if not write_roles:
            continue  # every write holds a lock: mediated publish
        if len(all_roles) < 2 and len(write_roles) < 2:
            continue
        findings.append(LintFinding(
            rule=SHARED_STATE_RACE,
            path=path,
            subject=f"{info.name}.{attr}",
            message=(
                f"attribute {attr!r} of {info.name} is written without "
                f"mediation while its accesses span thread roles "
                f"{sorted(all_roles)}"
            ),
            roles=tuple(sorted(all_roles)),
            lines=tuple(sorted(set(lines))),
        ))
    return findings


def _cycle_findings(edges: dict) -> list[LintFinding]:
    """DFS cycle detection over the global lock-acquisition graph.

    ``edges``: ``{(path, lock): set of (path, lock)}`` where an edge
    means the second lock was acquired while the first was held.
    """
    findings = []
    seen_cycles = set()
    state: dict = {}

    def dfs(node, stack):
        state[node] = "active"
        stack.append(node)
        for succ in sorted(edges.get(node, ())):
            if state.get(succ) == "active":
                cycle = stack[stack.index(succ):] + [succ]
                names = [lock for _, lock in cycle]
                pivot = names.index(min(names[:-1]))
                canonical = tuple(names[pivot:-1] + names[:pivot])
                if canonical in seen_cycles:
                    continue
                seen_cycles.add(canonical)
                path = cycle[0][0]
                subject = "->".join(canonical + (canonical[0],))
                findings.append(LintFinding(
                    rule=LOCK_ORDER_CYCLE,
                    path=path,
                    subject=subject,
                    message=(
                        f"locks {sorted(set(names[:-1]))} are acquired "
                        f"nested in inconsistent order (potential ABBA "
                        f"deadlock): {subject}"
                    ),
                ))
            elif state.get(succ) is None:
                dfs(succ, stack)
        stack.pop()
        state[node] = "done"

    for node in sorted(edges):
        if state.get(node) is None:
            dfs(node, [])
    return findings


def _annotation_types(node: ast.expr) -> set:
    """Every type name mentioned by an annotation expression.

    ``TelemetryLike | None`` yields ``{"TelemetryLike", "None"}``;
    quoted forward references are tokenised the same way.
    """
    names: set = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            token = ""
            for char in sub.value + " ":
                if char.isalnum() or char == "_":
                    token += char
                elif token:
                    names.add(token)
                    token = ""
    return names


def _class_field_types(tree: ast.Module) -> dict:
    """``{class: {field: hazardous type}}`` from class-body annotations."""
    out: dict = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        fields = {}
        for item in node.body:
            if (
                isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
            ):
                hazard = _annotation_types(item.annotation) & UNPICKLABLE_TYPES
                if hazard:
                    fields[item.target.id] = sorted(hazard)[0]
        if fields:
            out[node.name] = fields
    return out


def _functions(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _spawn_findings(path: str, tree: ast.Module,
                    class_fields: dict) -> list[LintFinding]:
    """SA003: hazardous-typed config fields reaching ``Process(args=...)``.

    Per function, track which names hold instances of classes with
    :data:`UNPICKLABLE_TYPES` fields — from parameter annotations, from
    direct construction, and through ``dataclasses.replace`` chains
    (every keyword override clears that field). Any such name appearing
    in a ``Process(... args=(...))`` payload with a hazardous field
    still live is flagged. The clean idiom is the supervisor's
    ``replace(config, telemetry=None, sink=sink_spec)`` strip.
    """
    findings = []
    seen: set = set()
    for func in _functions(tree):
        local: dict = {}
        arg_nodes = (
            list(func.args.posonlyargs) + list(func.args.args)
            + list(func.args.kwonlyargs)
        )
        for arg in arg_nodes:
            if arg.annotation is None:
                continue
            for cls in sorted(_annotation_types(arg.annotation)):
                if cls in class_fields:
                    local[arg.arg] = (cls, frozenset())
                    break
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                continue
            name = node.targets[0].id
            call = node.value
            ctor = _call_name(call.func)
            if ctor in class_fields:
                local[name] = (ctor, frozenset())
            elif (
                ctor == "replace"
                and call.args
                and isinstance(call.args[0], ast.Name)
                and call.args[0].id in local
            ):
                cls, stripped = local[call.args[0].id]
                overridden = {kw.arg for kw in call.keywords if kw.arg}
                local[name] = (cls, stripped | overridden)
        if not local:
            continue
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and _call_name(node.func) == "Process"
            ):
                continue
            payload = []
            for keyword in node.keywords:
                if keyword.arg == "args" and isinstance(
                    keyword.value, (ast.Tuple, ast.List)
                ):
                    payload.extend(keyword.value.elts)
            for element in payload:
                if not isinstance(element, ast.Name):
                    continue
                resolved = local.get(element.id)
                if resolved is None:
                    continue
                cls, stripped = resolved
                for fname, tname in sorted(class_fields[cls].items()):
                    if fname in stripped:
                        continue
                    subject = f"{cls}.{fname}"
                    if (path, subject) in seen:
                        continue
                    seen.add((path, subject))
                    findings.append(LintFinding(
                        rule=SPAWN_PICKLE,
                        path=path,
                        subject=subject,
                        message=(
                            f"{tname}-typed field {fname!r} of {cls} "
                            f"reaches the Process(...) spawn in "
                            f"{func.name}() without being stripped via "
                            f"dataclasses.replace(...) — it cannot "
                            f"cross the pickle boundary alive"
                        ),
                        lines=(node.lineno,),
                    ))
    return findings


def _shm_findings(path: str, tree: ast.Module) -> list[LintFinding]:
    """SA004: SharedMemory created/attached without close() AND unlink().

    Scope is the enclosing class (so a segment opened in one method and
    released in another is fine) or a module-level function. The
    reference-clean pattern is the shared-memory transport's
    ``finally: seg.close(); seg.unlink()``.
    """
    findings = []
    scopes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    class_spans = [
        (s.lineno, s.end_lineno or s.lineno) for s in scopes
    ]
    for node in _functions(tree):
        inside_class = any(
            lo <= node.lineno <= hi for lo, hi in class_spans
        )
        if not inside_class:
            scopes.append(node)
    for scope in scopes:
        calls = {
            _call_name(n.func)
            for n in ast.walk(scope)
            if isinstance(n, ast.Call)
        }
        if "SharedMemory" not in calls:
            continue
        missing = sorted({"close", "unlink"} - calls)
        if not missing:
            continue
        findings.append(LintFinding(
            rule=SHM_LIFECYCLE,
            path=path,
            subject=scope.name,
            message=(
                f"{scope.name} opens a SharedMemory segment but never "
                f"calls {' or '.join(missing)} — the segment (and its "
                f"backing file under /dev/shm) outlives the process"
            ),
            lines=(scope.lineno,),
        ))
    return findings


def _recv_findings(path: str, tree: ast.Module) -> list[LintFinding]:
    """SA005: cross-process receive/wait with no bound on blocking.

    Flags ``*.recv()`` / ``*.recv_bytes()`` in a method with no
    ``poll(...)`` guard, plus zero-argument ``wait()`` / ``join()`` /
    ``get()`` and ``wait_for(pred)`` with no timeout. One lost peer
    turns any of these into a process that can never be re-scheduled.
    """
    findings = []
    seen: set = set()

    def scan(scope_name: str, func) -> None:
        calls = [n for n in ast.walk(func) if isinstance(n, ast.Call)]
        has_poll = any(_call_name(c.func) == "poll" for c in calls)
        for call in calls:
            name = _call_name(call.func)
            if name is None or not isinstance(call.func, ast.Attribute):
                continue
            bare = not call.args and not call.keywords
            timed = (
                len(call.args) >= 2
                or any(k.arg == "timeout" for k in call.keywords)
            )
            if name in RECV_CALLS and not has_poll:
                reason = "with no poll(timeout) guard in the same method"
            elif name in {"wait", "join", "get"} and bare:
                reason = "with no timeout argument"
            elif name == "wait_for" and not timed:
                reason = "with no timeout argument"
            else:
                continue
            subject = f"{scope_name}.{name}"
            if (path, subject) in seen:
                continue
            seen.add((path, subject))
            findings.append(LintFinding(
                rule=UNBOUNDED_RECV,
                path=path,
                subject=subject,
                message=(
                    f"{scope_name} blocks on {name}() {reason} — if the "
                    f"peer dies this call never returns"
                ),
                lines=(call.lineno,),
            ))

    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scan(f"{node.name}.{item.name}", item)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan(node.name, node)
    return findings


class ConcurrencyLinter:
    """Scans a source tree and returns :class:`LintFinding` records."""

    def __init__(self, root: Path | str):
        self.root = Path(root)

    def run(self) -> list[LintFinding]:
        findings: list[LintFinding] = []
        lock_edges: dict = {}
        trees: list = []
        for source in sorted(self.root.rglob("*.py")):
            if "__pycache__" in source.parts:
                continue
            rel = source.relative_to(self.root).as_posix()
            try:
                trees.append((rel, ast.parse(source.read_text())))
            except SyntaxError as exc:
                findings.append(LintFinding(
                    rule=SHARED_STATE_RACE,
                    path=rel,
                    subject="<parse>",
                    message=f"could not parse: {exc}",
                ))
        # Pass 1: hazardous-field map across the whole tree, so a config
        # class defined in one module is recognised at a spawn site in
        # another (ClusterConfig lives in protocol.py, the Process()
        # call in supervisor.py).
        class_fields: dict = {}
        for _rel, tree in trees:
            class_fields.update(_class_field_types(tree))
        # Pass 2: per-file rules.
        for rel, tree in trees:
            for node in ast.walk(tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                info = _ClassScanner(node).info
                findings.extend(_race_findings(rel, info))
                for outer, inner, _line in info.lock_edges:
                    key = (rel, f"{info.name}.{outer}")
                    lock_edges.setdefault(key, set()).add(
                        (rel, f"{info.name}.{inner}")
                    )
            findings.extend(_spawn_findings(rel, tree, class_fields))
            findings.extend(_shm_findings(rel, tree))
            findings.extend(_recv_findings(rel, tree))
        findings.extend(_cycle_findings(lock_edges))
        findings.sort(key=lambda f: (f.rule, f.path, f.subject))
        return findings


def lint_tree(root: Path | str) -> list[LintFinding]:
    """Lint every ``*.py`` under ``root``."""
    return ConcurrencyLinter(root).run()
