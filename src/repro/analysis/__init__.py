"""Static analysis: schedule verification, lint, protocol checking.

Four prongs behind ``repro check``:

- :mod:`repro.analysis.verifier` symbolically replays an Algorithm-1
  :class:`~repro.scheduler.unified.IterationPlan` against the planner's
  own memory model and proves the schedule invariants (or emits
  machine-readable counterexamples with trigger id and page
  provenance).
- :mod:`repro.analysis.lint` AST-scans the repo for cross-thread
  shared-state races (SA001), lock-order cycles (SA002), spawn-boundary
  pickling hazards (SA003), shared-memory lifecycle leaks (SA004) and
  unbounded blocking receives (SA005), gated by a checked-in baseline
  (:mod:`repro.analysis.baseline`).
- :mod:`repro.analysis.protocol` model-checks the cluster coordinator's
  membership protocol — exhaustive bounded-depth exploration of the
  *same* transition-rule table the threaded coordinator dispatches
  (:data:`repro.cluster.rules.RULES`) against the membership invariant
  catalog, with minimal action-trace counterexamples.
- :mod:`repro.analysis.protocol.collective_verifier` proves multi-rank
  collective-schedule agreement and replays finished cluster workdirs
  (membership log + per-rank telemetry) against the fencing discipline.
"""

from repro.analysis.baseline import compare, load_baseline, save_baseline
from repro.analysis.invariants import (
    CLUSTER_REPLAY_INVARIANTS,
    COLLECTIVE_INVARIANTS,
    LINT_RULES,
    PROTOCOL_INVARIANTS,
    SCHEDULE_INVARIANTS,
    VerificationResult,
    Violation,
)
from repro.analysis.lint import ConcurrencyLinter, LintFinding, lint_tree
from repro.analysis.protocol import (
    ProtocolConfig,
    ProtocolExplorer,
    explore_protocol,
    verify_cluster_workdir,
    verify_collective_programs,
)
from repro.analysis.verifier import ScheduleVerifier, verify_plan

__all__ = [
    "CLUSTER_REPLAY_INVARIANTS",
    "COLLECTIVE_INVARIANTS",
    "ConcurrencyLinter",
    "LINT_RULES",
    "LintFinding",
    "PROTOCOL_INVARIANTS",
    "ProtocolConfig",
    "ProtocolExplorer",
    "SCHEDULE_INVARIANTS",
    "ScheduleVerifier",
    "VerificationResult",
    "Violation",
    "compare",
    "explore_protocol",
    "lint_tree",
    "load_baseline",
    "save_baseline",
    "verify_cluster_workdir",
    "verify_collective_programs",
    "verify_plan",
]
