"""Static analysis: schedule verification + concurrency lint.

Two prongs behind ``repro check``:

- :mod:`repro.analysis.verifier` symbolically replays an Algorithm-1
  :class:`~repro.scheduler.unified.IterationPlan` against the planner's
  own memory model and proves the schedule invariants (or emits
  machine-readable counterexamples with trigger id and page
  provenance).
- :mod:`repro.analysis.lint` AST-scans the repo for cross-thread
  shared-state races (SA001) and lock-order cycles (SA002), gated by a
  checked-in baseline (:mod:`repro.analysis.baseline`).
"""

from repro.analysis.baseline import compare, load_baseline, save_baseline
from repro.analysis.invariants import (
    LINT_RULES,
    SCHEDULE_INVARIANTS,
    VerificationResult,
    Violation,
)
from repro.analysis.lint import ConcurrencyLinter, LintFinding, lint_tree
from repro.analysis.verifier import ScheduleVerifier, verify_plan

__all__ = [
    "ConcurrencyLinter",
    "LINT_RULES",
    "LintFinding",
    "SCHEDULE_INVARIANTS",
    "ScheduleVerifier",
    "VerificationResult",
    "Violation",
    "compare",
    "lint_tree",
    "load_baseline",
    "save_baseline",
    "verify_plan",
]
