"""Static schedule verification: prove Algorithm 1's output safe.

The verifier replays a :class:`~repro.scheduler.tasks.Schedule`
*symbolically* — no pools, no simulator, no numpy kernels — against the
same :class:`~repro.scheduler.memory_model.MemoryModel` arithmetic the
scheduler planned with, and proves (or produces counterexamples for) the
invariant catalog in :mod:`repro.analysis.invariants`:

- ``use-before-fetch`` — every all-gather finds all of its layer's pages
  GPU-resident at its release trigger;
- ``oom-at-trigger`` — live bytes (trace base load + page residency +
  gathered buffers) never exceed the GPU budget at any logical op;
- ``evict-pinned`` — no eviction of a page while an in-flight gather of
  its layer still pins it (``[gather trigger, gather op]``);
- ``double-move`` / ``double-free`` — a page is never staged while
  already resident, nor evicted while absent;
- ``gather-before-use`` — every computation has its all-gather released
  at or before its own op;
- ``page-sharing`` — schedule tasks stay consistent with the layer page
  tables (valid page ids, whole-page payloads, ceil-sized shards,
  page-aligned gather buffers — the §4.1 page discipline);
- ``staleness-bound`` — the trace's update sweep runs in reverse layer
  order after each layer's backward, so Algorithm 2's lag never exceeds
  the configured ``update_interval``.

Violations carry the failing trigger id and the page's movement
provenance, and the whole result serializes for run reports and CI.
"""

from __future__ import annotations

import math

from repro.analysis.invariants import (
    DOUBLE_FREE,
    DOUBLE_MOVE,
    EVICT_PINNED,
    GATHER_BEFORE_USE,
    OOM_AT_TRIGGER,
    PAGE_SHARING,
    SCHEDULE_INVARIANTS,
    STALENESS_BOUND,
    USE_BEFORE_FETCH,
    Violation,
    VerificationResult,
)
from repro.errors import ConfigurationError
from repro.scheduler.memory_model import MemoryModel
from repro.scheduler.pages import LayerPages
from repro.scheduler.tasks import Operation, Schedule, index_by_trigger
from repro.tracer.tracer import IterationTrace

#: Release order within one trigger, mirroring the runtime executor:
#: evictions free space first, staging moves fill it, gathers consume it.
_RELEASE_ORDER = {
    Operation.MOVE_TO_CPU: 0,
    Operation.MOVE_TO_GPU: 1,
    Operation.ALL_GATHER: 2,
}


class ScheduleVerifier:
    """Symbolic replay of one schedule against the memory model."""

    def __init__(
        self,
        trace: IterationTrace,
        layer_pages: list[LayerPages],
        schedule: Schedule,
        gpu_budget_bytes: int,
        num_ranks: int = 1,
        cache_bytes: int = 0,
        use_recompute: bool = True,
        update_interval: int = 1,
    ):
        if update_interval < 1:
            raise ConfigurationError("update_interval must be >= 1")
        self._trace = trace
        self._pages = {table.layer_index: table for table in layer_pages}
        self._schedule = schedule
        self._budget = gpu_budget_bytes
        self._num_ranks = num_ranks
        self._cache_bytes = cache_bytes
        self._use_recompute = use_recompute
        self._update_interval = update_interval
        self._bwd_of = {
            layer.layer_index: layer.bwd_id for layer in trace.layers
        }

    @classmethod
    def for_plan(cls, plan, gpu_budget_bytes: int, update_interval: int = 1):
        """Build a verifier from a scheduler ``IterationPlan``."""
        return cls(
            trace=plan.trace,
            layer_pages=plan.layer_pages,
            schedule=plan.schedule,
            gpu_budget_bytes=gpu_budget_bytes,
            num_ranks=plan.num_ranks,
            cache_bytes=plan.cache.cache_bytes,
            update_interval=update_interval,
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def verify(self) -> VerificationResult:
        violations: list[Violation] = []
        valid_tasks = self._check_page_tables(violations)
        intervals, gathers = self._replay(valid_tasks, violations)
        peak = self._check_memory(intervals, gathers, violations)
        self._check_gather_coverage(violations)
        self._check_staleness(violations)
        violations.sort(
            key=lambda v: (SCHEDULE_INVARIANTS.index(v.invariant), v.trigger_id)
        )
        return VerificationResult(
            model_name=self._trace.model_name,
            violations=violations,
            stats={
                "tasks": len(self._schedule),
                "triggers": len({t.trigger_id for t in self._schedule}),
                "num_ops": self._trace.num_ops,
                "gpu_budget_bytes": self._budget,
                "peak_live_bytes": peak,
                "update_interval": self._update_interval,
            },
        )

    # ------------------------------------------------------------------
    # page-sharing: schedule <-> page-table consistency (§4.1 discipline)
    # ------------------------------------------------------------------
    def _check_page_tables(self, violations: list[Violation]) -> list:
        """Validate every task's page reference; returns the valid tasks.

        Tasks with out-of-table references are reported once and dropped
        from the replay so one bad reference doesn't cascade into
        double-move/OOM noise.
        """
        for table in self._pages.values():
            expected = max(1, math.ceil(table.shard_bytes / table.page_bytes))
            if table.num_pages != expected:
                violations.append(Violation(
                    invariant=PAGE_SHARING,
                    trigger_id=0,
                    layer_index=table.layer_index,
                    message=(
                        f"layer {table.layer_index} table has "
                        f"{table.num_pages} pages for a {table.shard_bytes}-byte "
                        f"shard; ceil sizing requires {expected}"
                    ),
                ))
            if table.gathered_bytes % table.page_bytes:
                violations.append(Violation(
                    invariant=PAGE_SHARING,
                    trigger_id=0,
                    layer_index=table.layer_index,
                    message=(
                        f"layer {table.layer_index} gather buffer "
                        f"({table.gathered_bytes} B) is not page-aligned "
                        f"({table.page_bytes}-byte pages)"
                    ),
                ))

        valid = []
        for task in self._schedule:
            if task.operation not in _RELEASE_ORDER:
                valid.append(task)
                continue
            table = self._pages.get(task.layer_index)
            if table is None:
                violations.append(Violation(
                    invariant=PAGE_SHARING,
                    trigger_id=task.trigger_id,
                    layer_index=task.layer_index,
                    page_id=task.page_id,
                    message=(
                        f"{task.operation.value} references layer "
                        f"{task.layer_index}, which has no page table"
                    ),
                ))
                continue
            if task.operation == Operation.ALL_GATHER:
                valid.append(task)
                continue
            if not 0 <= task.page_id < table.num_pages:
                violations.append(Violation(
                    invariant=PAGE_SHARING,
                    trigger_id=task.trigger_id,
                    layer_index=task.layer_index,
                    page_id=task.page_id,
                    message=(
                        f"{task.operation.value} references page "
                        f"{task.page_id} outside layer {task.layer_index}'s "
                        f"{table.num_pages} pages"
                    ),
                ))
                continue
            if task.nbytes != table.page_nbytes(task.page_id):
                violations.append(Violation(
                    invariant=PAGE_SHARING,
                    trigger_id=task.trigger_id,
                    layer_index=task.layer_index,
                    page_id=task.page_id,
                    message=(
                        f"{task.operation.value} of layer {task.layer_index} "
                        f"page {task.page_id} moves {task.nbytes} B, not the "
                        f"whole {table.page_nbytes(task.page_id)}-byte page — "
                        f"pages are the minimum unit of memory operations"
                    ),
                ))
                continue
            valid.append(task)
        return valid

    # ------------------------------------------------------------------
    # Replay: residency, use-before-fetch, pinning, double-move/free
    # ------------------------------------------------------------------
    def _replay(
        self, tasks: list, violations: list[Violation]
    ) -> tuple[dict, list]:
        """Walk triggers in order; returns (residency intervals, gathers).

        Residency intervals are ``{(layer, page): [[start, end], ...]}``
        over logical ops, derived purely from the task list (plus the
        executor's post-backward release of a layer's shard pages).
        """
        by_trigger = index_by_trigger(
            tasks, exclude=frozenset({Operation.COMPUTE})
        )
        # Pins: (layer -> list of (gather trigger, gather op)) windows.
        pins: dict[int, list[tuple[int, int]]] = {}
        for task in tasks:
            if task.operation == Operation.ALL_GATHER:
                pins.setdefault(task.layer_index, []).append(
                    (task.trigger_id, max(task.trigger_id, task.op_id))
                )

        resident: dict[tuple[int, int], int] = {}  # key -> move trigger
        history: dict[tuple[int, int], list] = {}
        intervals: dict[tuple[int, int], list[list[int]]] = {}
        gathers: list = []
        last_op = self._trace.num_ops - 1

        def close(key: tuple[int, int], start: int, end: int) -> None:
            if start <= end:
                intervals.setdefault(key, []).append(
                    [start, min(end, last_op)]
                )

        triggers = sorted(set(by_trigger) | set(self._bwd_of.values()))
        for trigger in triggers:
            for task in sorted(
                by_trigger.get(trigger, []),
                key=lambda t: _RELEASE_ORDER[t.operation],
            ):
                key = (task.layer_index, task.page_id)
                if task.operation == Operation.MOVE_TO_GPU:
                    events = history.setdefault(key, [])
                    if key in resident:
                        violations.append(Violation(
                            invariant=DOUBLE_MOVE,
                            trigger_id=trigger,
                            layer_index=task.layer_index,
                            page_id=task.page_id,
                            message=(
                                f"page l{key[0]}.p{key[1]} staged at trigger "
                                f"{trigger} while already GPU-resident since "
                                f"trigger {resident[key]}"
                            ),
                            provenance=tuple(events),
                        ))
                        continue
                    resident[key] = trigger
                    events.append((trigger, "move_to_gpu"))
                elif task.operation == Operation.MOVE_TO_CPU:
                    events = history.setdefault(key, [])
                    if key not in resident:
                        violations.append(Violation(
                            invariant=DOUBLE_FREE,
                            trigger_id=trigger,
                            layer_index=task.layer_index,
                            page_id=task.page_id,
                            message=(
                                f"page l{key[0]}.p{key[1]} evicted at trigger "
                                f"{trigger} while not GPU-resident"
                            ),
                            provenance=tuple(events),
                        ))
                        continue
                    pinned_by = [
                        window for window in pins.get(task.layer_index, [])
                        if window[0] <= trigger <= window[1]
                    ]
                    if pinned_by:
                        start, end = pinned_by[0]
                        violations.append(Violation(
                            invariant=EVICT_PINNED,
                            trigger_id=trigger,
                            layer_index=task.layer_index,
                            page_id=task.page_id,
                            message=(
                                f"page l{key[0]}.p{key[1]} evicted at trigger "
                                f"{trigger} while pinned by its layer's "
                                f"all-gather over [{start}, {end}]"
                            ),
                            provenance=tuple(events),
                        ))
                        # Fall through: the eviction still happens, so the
                        # residency ledger stays faithful to the schedule.
                    close(key, resident.pop(key), trigger - 1)
                    events.append((trigger, "move_to_cpu"))
                elif task.operation == Operation.ALL_GATHER:
                    table = self._pages[task.layer_index]
                    missing = [
                        page_id for page_id in range(table.num_pages)
                        if (task.layer_index, page_id) not in resident
                    ]
                    if missing:
                        violations.append(Violation(
                            invariant=USE_BEFORE_FETCH,
                            trigger_id=trigger,
                            layer_index=task.layer_index,
                            page_id=missing[0],
                            message=(
                                f"all-gather of layer {task.layer_index} at "
                                f"trigger {trigger} before page(s) "
                                f"{missing} arrived"
                            ),
                            provenance=tuple(
                                history.get(
                                    (task.layer_index, missing[0]), []
                                )
                            ),
                        ))
                    gathers.append(task)
            # The executor returns a layer's shard to the CPU right after
            # its backward; mirror that implicit release.
            for layer_index, bwd_id in self._bwd_of.items():
                if bwd_id != trigger:
                    continue
                for key in [k for k in resident if k[0] == layer_index]:
                    close(key, resident.pop(key), bwd_id)
                    history.setdefault(key, []).append(
                        (bwd_id, "post-backward release")
                    )
        # Pages never evicted nor passed by their backward (clamped ends).
        for key, start in resident.items():
            close(key, start, self._bwd_of.get(key[0], last_op))
        return intervals, gathers

    # ------------------------------------------------------------------
    # oom-at-trigger: the memory-model proof
    # ------------------------------------------------------------------
    def _memory_model(self) -> MemoryModel:
        return MemoryModel(
            self._trace,
            self._budget,
            num_ranks=self._num_ranks,
            cache_bytes=self._cache_bytes,
            use_recompute=self._use_recompute,
        )

    def _check_memory(
        self, intervals: dict, gathers: list, violations: list[Violation]
    ) -> float:
        """Populate the memory model and flag over-budget runs; returns
        the replayed peak live bytes."""
        memory = self._memory_model()
        last_op = self._trace.num_ops - 1
        for (layer_index, page_id), spans in intervals.items():
            nbytes = self._pages[layer_index].page_nbytes(page_id)
            for start, end in spans:
                memory.add_resident(nbytes, min(start, last_op), min(end, last_op))
        for task in gathers:
            end = min(max(task.trigger_id, task.op_id), last_op)
            memory.add_resident(task.nbytes, min(task.trigger_id, last_op), end)
        # One counterexample per maximal over-budget run, anchored at the
        # first trigger that overflows (the scheduling decision to blame).
        run_start = None
        worst = 0.0
        for op in range(self._trace.num_ops):
            live = memory.live_at(op)
            if live > self._budget:
                if run_start is None:
                    run_start, worst = op, live
                worst = max(worst, live)
                continue
            if run_start is not None:
                violations.append(self._oom_violation(run_start, op - 1, worst))
                run_start = None
        if run_start is not None:
            violations.append(
                self._oom_violation(run_start, self._trace.num_ops - 1, worst)
            )
        return memory.peak_live()

    def _oom_violation(self, start: int, end: int, worst: float) -> Violation:
        over = worst - self._budget
        return Violation(
            invariant=OOM_AT_TRIGGER,
            trigger_id=start,
            message=(
                f"live bytes exceed the GPU budget over triggers "
                f"[{start}, {end}]: peak {worst:.0f} B vs budget "
                f"{self._budget} B ({over:.0f} B over)"
            ),
        )

    # ------------------------------------------------------------------
    # gather-before-use: every compute has its gather, released in time
    # ------------------------------------------------------------------
    def _check_gather_coverage(self, violations: list[Violation]) -> None:
        gather_of_op = {
            task.op_id: task
            for task in self._schedule
            if task.operation == Operation.ALL_GATHER
        }
        for task in self._schedule:
            if task.operation != Operation.COMPUTE:
                continue
            gather = gather_of_op.get(task.op_id)
            if gather is None:
                violations.append(Violation(
                    invariant=GATHER_BEFORE_USE,
                    trigger_id=task.op_id,
                    layer_index=task.layer_index,
                    message=(
                        f"compute op {task.op_id} (layer {task.layer_index}) "
                        f"has no all-gather assembling its parameters"
                    ),
                ))
            elif gather.trigger_id > task.op_id:
                violations.append(Violation(
                    invariant=GATHER_BEFORE_USE,
                    trigger_id=gather.trigger_id,
                    layer_index=task.layer_index,
                    message=(
                        f"all-gather for op {task.op_id} releases at trigger "
                        f"{gather.trigger_id}, after the compute it feeds"
                    ),
                ))

    # ------------------------------------------------------------------
    # staleness-bound: Algorithm 2's update-sweep discipline on the trace
    # ------------------------------------------------------------------
    def _check_staleness(self, violations: list[Violation]) -> None:
        layers = self._trace.layers
        for layer in layers:
            if layer.update_id <= layer.bwd_id:
                violations.append(Violation(
                    invariant=STALENESS_BOUND,
                    trigger_id=layer.update_id,
                    layer_index=layer.layer_index,
                    message=(
                        f"layer {layer.layer_index} update (op "
                        f"{layer.update_id}) precedes its backward (op "
                        f"{layer.bwd_id}) — the sweep would fold a gradient "
                        f"that does not exist yet"
                    ),
                ))
        # Algorithm 2 sweeps in reverse layer order: update ids must
        # strictly decrease with the layer index, otherwise the lag of a
        # late layer exceeds the update_interval bound.
        for earlier, later in zip(layers, layers[1:]):
            if earlier.update_id <= later.update_id:
                violations.append(Violation(
                    invariant=STALENESS_BOUND,
                    trigger_id=later.update_id,
                    layer_index=later.layer_index,
                    message=(
                        f"updates of layers {earlier.layer_index} and "
                        f"{later.layer_index} are not in reverse layer order "
                        f"(ops {earlier.update_id} <= {later.update_id})"
                    ),
                ))
        # Parameter lifetimes must extend to their layer's update: a
        # param released earlier would be refreshed after it was freed.
        update_of = {layer.layer_index: layer.update_id for layer in layers}
        for access in self._trace.pattern.accesses:
            expected = update_of.get(access.layer_index)
            if expected is None or access.kind.name != "PARAM":
                continue
            if access.end_id != expected:
                violations.append(Violation(
                    invariant=STALENESS_BOUND,
                    trigger_id=access.end_id,
                    layer_index=access.layer_index,
                    tensor_id=access.tensor_id,
                    message=(
                        f"param tensor {access.tensor_id} ({access.name}) "
                        f"ends at op {access.end_id}, not at its layer's "
                        f"update op {expected}"
                    ),
                ))


def verify_plan(plan, gpu_budget_bytes: int, update_interval: int = 1):
    """One-call verification of an ``IterationPlan``."""
    return ScheduleVerifier.for_plan(
        plan, gpu_budget_bytes, update_interval=update_interval
    ).verify()
