"""Protocol-level static analysis: model-check the cluster coordinator.

Three verifiers extend the PR-4 schedule prong to the distributed layer:

- :mod:`~repro.analysis.protocol.model` /
  :mod:`~repro.analysis.protocol.explorer` — a pure state-machine model
  of the rendezvous coordinator driven by the *same* transition-rule
  table as :class:`repro.cluster.coordinator.Coordinator`, explored
  exhaustively to a bounded depth against the membership invariant
  catalog (:data:`repro.analysis.invariants.PROTOCOL_INVARIANTS`);
- :mod:`~repro.analysis.protocol.collective_verifier` — multi-rank
  collective-schedule agreement (identical ordered op sequences with
  agreeing shard lengths on every rank) plus post-hoc replay of a real
  cluster workdir's membership log and per-rank telemetry streams.
"""

from repro.analysis.protocol.collective_verifier import (
    CollectiveOp,
    collective_program_from_plan,
    verify_cluster_workdir,
    verify_collective_programs,
    worker_collective_program,
)
from repro.analysis.protocol.explorer import ProtocolExplorer, explore_protocol
from repro.analysis.protocol.model import ProtocolConfig, SystemState, WorkerModel

__all__ = [
    "CollectiveOp",
    "ProtocolConfig",
    "ProtocolExplorer",
    "SystemState",
    "WorkerModel",
    "collective_program_from_plan",
    "explore_protocol",
    "verify_cluster_workdir",
    "verify_collective_programs",
    "worker_collective_program",
]
