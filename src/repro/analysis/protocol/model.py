"""A pure state-machine model of the coordinator protocol.

The model composes two things:

- the **coordinator**, represented by the exact
  :class:`repro.cluster.rules.MembershipState` the production
  :class:`~repro.cluster.coordinator.Coordinator` holds, driven through
  the exact :data:`repro.cluster.rules.RULES` transition table it
  dispatches through (one table, zero drift);
- a **worker automaton** per (slot, incarnation) life, mirroring
  :func:`repro.cluster.worker.run_worker`'s outer rendezvous loop and
  inner step loop: join, train to each step barrier, retire when the
  group votes to rescale, rejoin after a fence, declare done.

Time is abstract. Every rule call uses ``now = 0.0``; heartbeat-deadline
eviction is a single nondeterministic ``expire`` action (it subsumes the
suspect/evict ladder — only the eviction changes membership), and the
rendezvous grace window is a ``grace`` action setting a boolean that any
join or fence resets — exactly mirroring the coordinator's
``last_join`` clock restarts, including the PR-6 fence-resets-grace
behavior. Checkpointing is abstracted to "every released step barrier
is durable": a rejoining worker resumes from the highest step any
barrier released (``checkpoint_every = 1`` in model terms).

The explorer (:mod:`repro.analysis.protocol.explorer`) enumerates
enabled actions via :func:`enabled_actions`, applies them on cloned
states via :func:`apply_action`, and checks the invariant catalog after
every transition.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.rules import (
    EVENT_FENCED,
    EVENT_JOIN,
    MembershipState,
)
from repro.cluster.rules import RULES as COORDINATOR_RULES

__all__ = [
    "COORDINATOR_RULES",
    "ProtocolConfig",
    "SystemState",
    "WorkerModel",
    "apply_action",
    "enabled_actions",
    "initial_system",
    "live_workers",
]

#: The model's single abstract instant (see module docstring).
NOW = 0.0

# Worker phases (the outer-loop automaton).
START = "start"          # alive, about to join
JOINING = "joining"      # in coordinator pending, awaiting formation
RUNNING = "running"      # member; next move is the current step's barrier
AWAITING = "awaiting"    # arrived at a barrier that has not released
RETIRING = "retiring"    # group voted rejoin: checkpointed, will retire
DONE_READY = "done_ready"  # finished every step, about to declare done
CRASHED = "crashed"      # SIGKILLed; only a respawn continues this slot
EXITED = "exited"        # left cleanly (workload complete or rejected)

#: Phases whose worker still has protocol obligations (used by the
#: rendezvous-convergence deadlock check).
LIVE_PHASES = frozenset(
    (START, JOINING, RUNNING, AWAITING, RETIRING, DONE_READY)
)
#: Phases a SIGKILL can interrupt (a START worker has not connected yet).
CRASHABLE_PHASES = frozenset(
    (JOINING, RUNNING, AWAITING, RETIRING, DONE_READY)
)


@dataclass(frozen=True)
class ProtocolConfig:
    """One bounded exploration scenario.

    ``world_size``/``min_world``/``rendezvous_grace`` feed the shared
    rule table verbatim; ``slots`` is how many supervisor slots exist
    (defaults to ``world_size``; fewer slots than ``world_size`` forces
    every formation through the grace path). The ``max_*`` knobs bound
    the fault nondeterminism so the state space stays finite.
    """

    world_size: int = 2
    slots: int | None = None
    min_world: int = 1
    steps: int = 2
    max_crashes: int = 1
    max_respawns: int = 1
    max_expiries: int = 1
    rendezvous_grace: float = 1.0
    heartbeat_interval: float = 0.05
    suspect_after: float = 0.25
    evict_after: float = 0.75

    @property
    def num_slots(self) -> int:
        return self.world_size if self.slots is None else self.slots


def model_worker_id(slot: int, incarnation: int) -> str:
    """Same identity scheme as :func:`repro.cluster.protocol.worker_id`."""
    return f"w{slot}i{incarnation}"


@dataclass
class WorkerModel:
    """One worker life's position in the rendezvous + step loop."""

    worker: str
    slot: int
    incarnation: int
    phase: str = START
    generation: int = -1
    rank: int = -1
    step: int = 0

    def key(self) -> tuple:
        return (self.worker, self.slot, self.incarnation, self.phase,
                self.generation, self.rank, self.step)


@dataclass
class SystemState:
    """Coordinator state + every worker life + fault/history bookkeeping."""

    coord: MembershipState = field(default_factory=MembershipState)
    workers: dict = field(default_factory=dict)  # worker id -> WorkerModel
    crashes_used: int = 0
    expiries_used: int = 0
    respawns: dict = field(default_factory=dict)  # slot -> respawns used
    #: The rendezvous grace window has elapsed since the last join/fence.
    grace_elapsed: bool = False
    #: How many times the grace window elapsed (regression probes).
    graces: int = 0
    #: Highest step any released barrier certified (abstract checkpoint).
    progress: int = 0
    # ---- history the invariants need (never read by the rules) ----
    fenced_generations: frozenset = frozenset()
    crashed_lives: frozenset = frozenset()   # {(slot, incarnation), ...}
    admitted: dict = field(default_factory=dict)  # slot -> last admitted inc

    def clone(self) -> "SystemState":
        return SystemState(
            coord=self.coord.clone(),
            workers={wid: replace(w) for wid, w in self.workers.items()},
            crashes_used=self.crashes_used,
            expiries_used=self.expiries_used,
            respawns=dict(self.respawns),
            grace_elapsed=self.grace_elapsed,
            graces=self.graces,
            progress=self.progress,
            fenced_generations=self.fenced_generations,
            crashed_lives=self.crashed_lives,
            admitted=dict(self.admitted),
        )

    def key(self) -> tuple:
        return (
            self.coord.key(),
            tuple(self.workers[wid].key() for wid in sorted(self.workers)),
            self.crashes_used,
            self.expiries_used,
            tuple(sorted(self.respawns.items())),
            self.grace_elapsed,
            self.progress,
            tuple(sorted(self.fenced_generations)),
            tuple(sorted(self.crashed_lives)),
            tuple(sorted(self.admitted.items())),
        )


@dataclass(frozen=True)
class Action:
    """One enabled transition: a label, a kind, and its target.

    ``local`` marks actions that are deterministic and worker-local
    (they mutate no coordinator state and disable no other action's
    effect on the coordinator) — the explorer's partial-order reduction
    may commute them ahead of everything else.
    """

    label: str
    kind: str
    target: object = None
    local: bool = False


def initial_system(config: ProtocolConfig) -> SystemState:
    system = SystemState()
    for slot in range(config.num_slots):
        wid = model_worker_id(slot, 0)
        system.workers[wid] = WorkerModel(wid, slot, 0)
    return system


def live_workers(system: SystemState) -> list:
    return [w.worker for w in system.workers.values()
            if w.phase in LIVE_PHASES]


def _latest_life(system: SystemState, slot: int) -> WorkerModel | None:
    lives = [w for w in system.workers.values() if w.slot == slot]
    if not lives:
        return None
    return max(lives, key=lambda w: w.incarnation)


def enabled_actions(system: SystemState, config: ProtocolConfig,
                    rules: dict) -> list:
    """Every transition schedulable from ``system``, sorted by label."""
    coord = system.coord
    actions: list[Action] = []
    for wid in sorted(system.workers):
        w = system.workers[wid]
        if w.phase == START:
            if not coord.complete:
                actions.append(Action(f"join {wid}", "join", wid))
        elif w.phase == JOINING:
            if coord.complete:
                actions.append(Action(f"reject {wid}", "reject", wid,
                                      local=True))
        elif w.phase == RUNNING:
            actions.append(Action(
                f"barrier {wid} step{w.step}", "barrier", wid
            ))
        elif w.phase == AWAITING:
            status, _ = rules["barrier_status"](
                coord, f"step{w.step}", w.generation
            )
            if status != "wait":
                # Released resolution is worker-local: the coordinator
                # already released the barrier; only this worker's own
                # continuation remains. Fenced resolution re-enters the
                # rendezvous, so it stays interleaved.
                actions.append(Action(
                    f"resolve {wid} step{w.step}", "resolve", wid,
                    local=(status == "released"),
                ))
        elif w.phase == RETIRING:
            actions.append(Action(f"retire {wid}", "retire", wid))
        elif w.phase == DONE_READY:
            actions.append(Action(f"done {wid}", "done", wid))
        if (w.phase in CRASHABLE_PHASES
                and system.crashes_used < config.max_crashes):
            actions.append(Action(f"crash {wid}", "crash", wid))
        if (w.phase in (RUNNING, AWAITING)
                and system.expiries_used < config.max_expiries
                and wid in coord.members and not coord.members[wid].done
                and not coord.fenced and not coord.complete):
            actions.append(Action(f"expire {wid}", "expire", wid))
    if not coord.complete:
        for slot in range(config.num_slots):
            latest = _latest_life(system, slot)
            if (latest is not None and latest.phase == CRASHED
                    and system.respawns.get(slot, 0) < config.max_respawns):
                actions.append(Action(f"respawn slot{slot}", "respawn", slot))
    now = config.rendezvous_grace if system.grace_elapsed else NOW
    reason = rules["formation_due"](coord, now, config)
    if reason:
        actions.append(Action(f"form {reason}", "form"))
    if (
        not system.grace_elapsed
        and coord.pending
        and not coord.complete
        and (coord.generation == 0 or coord.fenced)
        and len(coord.pending) >= config.min_world
        and rules["formation_due"](coord, NOW, config) is None
    ):
        actions.append(Action("grace elapses", "grace"))
    return sorted(actions, key=lambda a: a.label)


def _proceed(system: SystemState, w: WorkerModel, rejoin: bool,
             config: ProtocolConfig) -> None:
    """A released step barrier: advance, then retire/finish/continue."""
    w.step += 1
    system.progress = max(system.progress, w.step)
    if w.step >= config.steps:
        w.phase = DONE_READY
    elif rejoin:
        w.phase = RETIRING
    else:
        w.phase = RUNNING


def _restart(w: WorkerModel) -> None:
    """Back to the outer rendezvous loop (fenced / stale / retired)."""
    w.phase = START
    w.generation = -1
    w.rank = -1


def apply_action(system: SystemState, action: Action,
                 config: ProtocolConfig, rules: dict) -> dict:
    """Apply ``action`` in place; returns what the invariants need.

    The info dict carries the rule-emitted membership events, the
    barriers this action newly released, and the members admitted if it
    formed a generation.
    """
    coord = system.coord
    info: dict = {"events": [], "released": [], "formed": []}
    kind = action.kind
    if kind == "join":
        w = system.workers[action.target]
        info["events"] += rules["join"](
            coord, w.worker, w.slot, w.incarnation, NOW
        )
        w.phase = JOINING
    elif kind == "grace":
        system.grace_elapsed = True
        system.graces += 1
    elif kind == "form":
        info["events"] += rules["form"](coord, NOW)
        system.grace_elapsed = False
        for wid, member in coord.members.items():
            info["formed"].append(
                (wid, member.slot, member.incarnation, member.rank)
            )
            w = system.workers.get(wid)
            if w is not None:
                w.generation = coord.generation
                w.rank = member.rank
                w.step = system.progress
                w.phase = RUNNING if w.step < config.steps else DONE_READY
        for _, slot, incarnation, _ in info["formed"]:
            system.admitted[slot] = incarnation
    elif kind == "barrier":
        w = system.workers[action.target]
        name = f"step{w.step}"
        status, events = rules["barrier_arrive"](
            coord, w.worker, name, w.generation
        )
        info["events"] += events
        if status == "released":
            info["released"].append((w.generation, name))
            rejoin = coord.barriers[(w.generation, name)].rejoin
            _proceed(system, w, rejoin, config)
        elif status == "wait":
            w.phase = AWAITING
        else:  # stale / fenced: checkpoint is durable, re-join
            _restart(w)
    elif kind == "resolve":
        w = system.workers[action.target]
        status, rejoin = rules["barrier_status"](
            coord, f"step{w.step}", w.generation
        )
        if status == "released":
            _proceed(system, w, rejoin, config)
        else:
            _restart(w)
    elif kind == "retire":
        w = system.workers[action.target]
        info["events"] += rules["retire"](
            coord, w.worker, w.generation, NOW
        )
        _restart(w)
    elif kind == "done":
        w = system.workers[action.target]
        _, events = rules["done"](coord, w.worker)
        info["events"] += events
        w.phase = EXITED
    elif kind == "crash":
        w = system.workers[action.target]
        w.phase = CRASHED
        system.crashes_used += 1
        system.crashed_lives = system.crashed_lives | {
            (w.slot, w.incarnation)
        }
        info["events"] += rules["disconnect"](coord, w.worker, NOW)
    elif kind == "respawn":
        slot = action.target
        latest = _latest_life(system, slot)
        system.respawns[slot] = system.respawns.get(slot, 0) + 1
        incarnation = rules["next_incarnation"](latest.incarnation)
        wid = model_worker_id(slot, incarnation)
        system.workers[wid] = WorkerModel(wid, slot, incarnation)
    elif kind == "expire":
        w = system.workers[action.target]
        system.expiries_used += 1
        info["events"] += rules["evict"](
            coord, w.worker, "heartbeat deadline expired", NOW
        )
        # The worker itself is alive (partitioned, not dead): it will
        # discover the fence at its next barrier or resolution.
    elif kind == "reject":
        w = system.workers[action.target]
        w.phase = EXITED
    else:  # pragma: no cover - enumeration and application must agree
        raise ValueError(f"unknown action kind {kind!r}")

    # Mirror the coordinator's last_join clock restarts: a join or a
    # fence restarts the rendezvous grace window (the PR-6 behavior).
    for event_type, _fields in info["events"]:
        if event_type == EVENT_FENCED:
            system.fenced_generations = (
                system.fenced_generations | {coord.generation}
            )
            system.grace_elapsed = False
        elif event_type == EVENT_JOIN:
            system.grace_elapsed = False
    return info
