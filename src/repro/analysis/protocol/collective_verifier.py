"""Multi-rank collective-schedule verification.

Two entry points extend the PR-4 single-rank ``ScheduleVerifier`` to
the cluster:

- **Planned agreement** (:func:`verify_collective_programs`): every
  rank's schedule must issue an *identical ordered sequence* of
  collectives with *agreeing payload sizes*. A rank whose plan gathers
  in a different order — or with a different shard length — deadlocks
  the whole group at runtime, because ZeRO collectives match purely by
  call order. Programs come from the worker step loop
  (:func:`worker_collective_program`), from any PR-4
  :class:`~repro.scheduler.unified.IterationPlan`
  (:func:`collective_program_from_plan`), or hand-built.
- **Post-hoc replay** (:func:`verify_cluster_workdir`): replay a real
  run's ``membership_events.jsonl`` and per-rank telemetry streams
  (PR 8) and verify the fencing discipline actually held — generations
  monotonic and fenced-never-patched, ranks dense and slot-unique,
  evicted lives only readmitted with a bumped incarnation, and every
  rank of a generation having executed byte-identical collective
  sequences per step (prefixes allowed: a fenced or killed rank stops
  mid-sequence).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.analysis.invariants import (
    CLUSTER_REPLAY_INVARIANTS,
    COLLECTIVE_AGREEMENT,
    COLLECTIVE_INVARIANTS,
    COLLECTIVE_ORDER,
    COLLECTIVE_SHAPE,
    COLLECTIVE_WORLD,
    COMPLETE_IMPLIES_DONE,
    FENCE_DISCIPLINE,
    GENERATION_MONOTONIC,
    INCARNATION_BUMP,
    UNIQUE_RANK_PER_SLOT,
    VerificationResult,
    Violation,
)

__all__ = [
    "CollectiveOp",
    "collective_program_from_plan",
    "verify_cluster_workdir",
    "verify_collective_programs",
    "worker_collective_program",
]

_WORKER_ID = re.compile(r"^w(\d+)i(\d+)$")

#: Span names that are collectives in the worker's step loop.
_COLLECTIVE_SPANS = frozenset(("reduce_scatter", "all_gather"))


@dataclass(frozen=True)
class CollectiveOp:
    """One collective call a rank plans (or executed): kind + payload."""

    kind: str      # "all_gather" | "reduce_scatter"
    nbytes: int    # payload bytes this rank contributes
    label: str = ""


def worker_collective_program(config, world: int, rank: int,
                              start_step: int = 0,
                              total_elements: int | None = None) -> list:
    """The ordered collectives one rank issues in one generation.

    Mirrors ``repro.cluster.worker._run_generation``: per step a
    gradient ``reduce_scatter`` (full flat fp32 state), a parameter
    ``all_gather`` (one padded shard), and the float64 loss
    ``all_gather``; each checkpoint step adds three full-state shard
    all-gathers (master/m/v). ``rank`` does not change the result —
    that *is* the invariant — but stays in the signature so per-rank
    configuration bugs surface as disagreeing programs.
    """
    from repro.zero.collectives import shard_length

    if total_elements is None:
        from repro.cluster.worker import _build_model

        _, params = _build_model(config)
        total_elements = sum(p.data.size for p in params)
    shard = shard_length(total_elements, world)
    program: list[CollectiveOp] = []
    for step in range(start_step, config.steps):
        program.append(CollectiveOp(
            "reduce_scatter", total_elements * 4, f"step{step}/grad"
        ))
        program.append(CollectiveOp(
            "all_gather", shard * 4, f"step{step}/params"
        ))
        program.append(CollectiveOp("all_gather", 8, f"step{step}/loss"))
        completed = step + 1
        if completed % config.checkpoint_every == 0:
            for name in ("master", "m", "v"):
                program.append(CollectiveOp(
                    "all_gather", shard * 4, f"ckpt{completed}/{name}"
                ))
    return program


def collective_program_from_plan(plan) -> list:
    """Extract the ordered collective sequence from an ``IterationPlan``.

    Any PR-4 schedule is admissible input: the communicator tasks
    (``ALL_GATHER``/``REDUCE_SCATTER``) in schedule order are exactly
    what each rank would issue, so per-rank plans can be checked for
    agreement with :func:`verify_collective_programs`.
    """
    from repro.scheduler.tasks import Operation

    program: list[CollectiveOp] = []
    for task in plan.schedule:
        if task.operation in (Operation.ALL_GATHER, Operation.REDUCE_SCATTER):
            program.append(CollectiveOp(
                task.operation.value,
                int(task.nbytes),
                f"t{task.trigger_id}/L{task.layer_index}",
            ))
    return program


def verify_collective_programs(programs: dict) -> VerificationResult:
    """Check that every rank's program is the same ordered sequence.

    ``programs`` maps rank -> list of :class:`CollectiveOp`. Stops at
    the first disagreement (one minimal counterexample, mirroring the
    schedule verifier).
    """
    violations: list[Violation] = []
    ranks = sorted(programs)
    world = len(ranks)
    if ranks != list(range(world)):
        violations.append(Violation(
            invariant=COLLECTIVE_WORLD,
            trigger_id=0,
            message=(
                f"rank set {ranks} is not the dense 0..{world - 1} the "
                f"collectives assume"
            ),
        ))
    if not violations and world:
        reference = programs[ranks[0]]
        for rank in ranks[1:]:
            program = programs[rank]
            if len(program) != len(reference):
                violations.append(Violation(
                    invariant=COLLECTIVE_ORDER,
                    trigger_id=min(len(program), len(reference)),
                    message=(
                        f"rank {rank} plans {len(program)} collectives, "
                        f"rank {ranks[0]} plans {len(reference)} — the "
                        f"shorter rank deadlocks the group at the first "
                        f"unmatched call"
                    ),
                ))
                break
            mismatch = next(
                (i for i, (a, b) in enumerate(zip(reference, program))
                 if a.kind != b.kind), None,
            )
            if mismatch is not None:
                a, b = reference[mismatch], program[mismatch]
                violations.append(Violation(
                    invariant=COLLECTIVE_ORDER,
                    trigger_id=mismatch,
                    message=(
                        f"collective #{mismatch}: rank {ranks[0]} issues "
                        f"{a.kind} ({a.label}) but rank {rank} issues "
                        f"{b.kind} ({b.label}) — order must be identical "
                        f"on every rank"
                    ),
                ))
                break
            mismatch = next(
                (i for i, (a, b) in enumerate(zip(reference, program))
                 if a.nbytes != b.nbytes), None,
            )
            if mismatch is not None:
                a, b = reference[mismatch], program[mismatch]
                violations.append(Violation(
                    invariant=COLLECTIVE_SHAPE,
                    trigger_id=mismatch,
                    message=(
                        f"collective #{mismatch} ({a.kind}, {a.label}): "
                        f"rank {ranks[0]} contributes {a.nbytes} bytes but "
                        f"rank {rank} contributes {b.nbytes} — shard "
                        f"lengths must agree"
                    ),
                ))
                break
    ops = len(programs[ranks[0]]) if ranks else 0
    return VerificationResult(
        model_name=f"collective-programs/w{world}",
        kind="collective",
        violations=violations,
        invariants_checked=COLLECTIVE_INVARIANTS,
        stats={"world": world, "ops_per_rank": ops},
    )


# ----------------------------------------------------------------------
# Post-hoc workdir replay
# ----------------------------------------------------------------------
def _parse_worker(worker: str) -> tuple | None:
    match = _WORKER_ID.match(worker)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2))


def _replay_membership(events: list) -> list:
    """Replay the membership log against the fencing discipline."""
    violations: list[Violation] = []
    current_generation = 0
    fenced_generations: set[int] = set()
    admitted: dict[int, int] = {}   # slot -> highest admitted incarnation
    evicted_lives: set[tuple] = set()
    eviction_generations: set[int] = set()

    for index, event in enumerate(events):
        etype = event.get("type")
        generation = int(event.get("generation", 0))
        if etype == "generation_formed":
            if generation <= current_generation:
                violations.append(Violation(
                    invariant=GENERATION_MONOTONIC,
                    trigger_id=index,
                    message=(
                        f"event {index}: generation {generation} formed "
                        f"after generation {current_generation}"
                    ),
                ))
            if (current_generation > 0
                    and current_generation not in fenced_generations):
                violations.append(Violation(
                    invariant=FENCE_DISCIPLINE,
                    trigger_id=index,
                    message=(
                        f"event {index}: generation {generation} formed "
                        f"while generation {current_generation} was never "
                        f"fenced — membership was patched, not fenced"
                    ),
                ))
            members = event.get("members", {})
            parsed = {w: _parse_worker(w) for w in members}
            slots = [p[0] for p in parsed.values() if p is not None]
            ranks = sorted(int(r) for r in members.values())
            if len(set(slots)) != len(slots) or ranks != list(range(len(ranks))):
                violations.append(Violation(
                    invariant=UNIQUE_RANK_PER_SLOT,
                    trigger_id=index,
                    message=(
                        f"event {index}: generation {generation} members "
                        f"{members} do not form a unique slot / dense rank "
                        f"assignment"
                    ),
                ))
            for worker, parsed_id in parsed.items():
                if parsed_id is None:
                    continue
                slot, incarnation = parsed_id
                if (slot, incarnation) in evicted_lives:
                    violations.append(Violation(
                        invariant=INCARNATION_BUMP,
                        trigger_id=index,
                        message=(
                            f"event {index}: {worker} rejoined generation "
                            f"{generation} with the same incarnation it "
                            f"was evicted with — respawns must bump the "
                            f"incarnation"
                        ),
                    ))
                previous = admitted.get(slot)
                if previous is not None and incarnation < previous:
                    violations.append(Violation(
                        invariant=INCARNATION_BUMP,
                        trigger_id=index,
                        message=(
                            f"event {index}: slot {slot} admitted at "
                            f"incarnation {incarnation} after already "
                            f"reaching {previous}"
                        ),
                    ))
                admitted[slot] = max(incarnation, admitted.get(slot, 0))
            current_generation = max(current_generation, generation)
        elif etype == "fenced":
            fenced_generations.add(generation)
        elif etype == "evicted":
            parsed_id = _parse_worker(event.get("worker", ""))
            if parsed_id is not None:
                evicted_lives.add(parsed_id)
            eviction_generations.add(generation)
        elif etype == "complete":
            if generation in fenced_generations:
                violations.append(Violation(
                    invariant=COMPLETE_IMPLIES_DONE,
                    trigger_id=index,
                    message=(
                        f"event {index}: the run completed in generation "
                        f"{generation} after that generation was fenced"
                    ),
                ))
    # Every eviction must have fenced its generation by end of log.
    unfenced = sorted(eviction_generations - fenced_generations)
    if unfenced:
        violations.append(Violation(
            invariant=FENCE_DISCIPLINE,
            trigger_id=len(events),
            message=(
                f"generations {unfenced} evicted a member but were never "
                f"fenced — survivors could complete collectives with a "
                f"stale world"
            ),
        ))
    return violations


def _executed_collectives(stream) -> dict:
    """Per (generation, step): the ordered collectives one rank ran."""
    steps = [
        span for span in stream.spans
        if str(span.get("name", "")).startswith("step")
        and isinstance(span.get("args"), dict)
        and "generation" in span["args"]
    ]
    out: dict = {}
    for step_span in steps:
        args = step_span["args"]
        key = (int(args["generation"]), int(args["step"]))
        inner = sorted(
            (
                span for span in stream.spans
                if span.get("name") in _COLLECTIVE_SPANS
                and span.get("start", 0.0) >= step_span.get("start", 0.0)
                and span.get("end", 0.0) <= step_span.get("end", 0.0)
            ),
            key=lambda span: span.get("start", 0.0),
        )
        out[key] = [
            (span["name"], (span.get("args") or {}).get("nbytes"))
            for span in inner
        ]
    return out


def _agreement_violations(sequences: dict) -> list:
    """Prefix-compatibility of executed collectives across ranks.

    ``sequences`` maps (generation, step) -> {source: [(kind, nbytes)]}.
    A killed or fenced rank legally stops mid-sequence, so shorter
    sequences must be prefixes of longer ones — any divergence before
    the shorter one ends means two ranks matched different collectives.
    """
    violations: list[Violation] = []
    for key in sorted(sequences):
        by_source = sequences[key]
        if len(by_source) < 2:
            continue
        generation, step = key
        reference_source = max(by_source, key=lambda s: len(by_source[s]))
        reference = by_source[reference_source]
        for source in sorted(by_source):
            if source == reference_source:
                continue
            sequence = by_source[source]
            for i, (kind, nbytes) in enumerate(sequence):
                ref_kind, ref_nbytes = reference[i]
                same_bytes = (
                    nbytes is None or ref_nbytes is None
                    or nbytes == ref_nbytes
                )
                if kind == ref_kind and same_bytes:
                    continue
                violations.append(Violation(
                    invariant=COLLECTIVE_AGREEMENT,
                    trigger_id=step,
                    message=(
                        f"generation {generation} step {step}, collective "
                        f"#{i}: {source} executed {kind}"
                        f"({nbytes} bytes) but {reference_source} executed "
                        f"{ref_kind}({ref_nbytes} bytes)"
                    ),
                ))
                break
            else:
                continue
            break
    return violations


def verify_cluster_workdir(workdir: str) -> VerificationResult:
    """Replay a real run's membership log + rank streams post-hoc."""
    from repro.telemetry.collect import load_membership, load_streams

    events = load_membership(workdir)
    violations = _replay_membership(events)

    streams = [s for s in load_streams(workdir) if s.role == "rank"]
    sequences: dict = {}
    executed = 0
    for stream in streams:
        for key, ops in _executed_collectives(stream).items():
            sequences.setdefault(key, {})[stream.source] = ops
            executed += len(ops)
    violations.extend(_agreement_violations(sequences))

    return VerificationResult(
        model_name=f"cluster-workdir/{workdir}",
        kind="cluster",
        violations=violations,
        invariants_checked=CLUSTER_REPLAY_INVARIANTS,
        stats={
            "membership_events": len(events),
            "rank_streams": len(streams),
            "steps_observed": len(sequences),
            "collectives_observed": executed,
        },
    )
