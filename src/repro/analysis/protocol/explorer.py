"""Bounded-depth stateless model checking of the coordinator protocol.

Breadth-first exploration over :mod:`repro.analysis.protocol.model`
system states, driven by the coordinator's own transition-rule table
(:data:`repro.cluster.rules.RULES`). BFS plus canonical-state
memoization means the first violation found is a *minimal* action
trace; it is reported as one PR-4 :class:`~repro.analysis.invariants.
Violation` whose provenance is the full counterexample schedule and
whose message names the offending action.

Partial-order reduction: when any enabled action is provably local —
deterministic, worker-private, with no effect on coordinator state
(resolving an already-released barrier, a rejected joiner exiting after
completion) — the explorer commutes the first such action ahead of the
rest instead of branching. Every pruned interleaving differs from an
explored one only in when a worker consumes an answer the coordinator
already committed, which no membership invariant can observe.

Seeding a mutation is how the tests prove each invariant has teeth::

    rules = dict(RULES, barrier_arrive=patched)
    result = ProtocolExplorer(rules=rules).explore(depth=8)
    assert result.violations[0].invariant == FENCE_NEVER_PATCH
"""

from __future__ import annotations

from collections import deque

from repro.analysis.invariants import (
    BARRIER_RELEASE_FULL,
    COMPLETE_IMPLIES_DONE,
    FENCE_NEVER_PATCH,
    GENERATION_MONOTONIC,
    INCARNATION_BUMP,
    NO_SPLIT_BRAIN,
    PROTOCOL_INVARIANTS,
    RENDEZVOUS_CONVERGENCE,
    UNIQUE_RANK_PER_SLOT,
    VerificationResult,
    Violation,
)
from repro.analysis.protocol.model import (
    COORDINATOR_RULES,
    ProtocolConfig,
    apply_action,
    enabled_actions,
    initial_system,
    live_workers,
)
from repro.cluster.rules import EVENT_COMPLETE

__all__ = ["ProtocolExplorer", "check_transition", "explore_protocol"]


def _violation(invariant: str, trace: tuple, message: str) -> Violation:
    """Package a counterexample: provenance is the whole action trace."""
    return Violation(
        invariant=invariant,
        trigger_id=max(0, len(trace) - 1),
        message=message,
        provenance=tuple(enumerate(trace)),
    )


def check_transition(before, action, after, info, trace: tuple):
    """Check every safety invariant across one applied transition.

    ``before``/``after`` are :class:`SystemState`s, ``info`` is what
    :func:`apply_action` returned, ``trace`` already ends with
    ``action.label``. Returns the first :class:`Violation` or ``None``.
    """
    b, a = before.coord, after.coord
    label = action.label

    if a.generation < b.generation:
        return _violation(
            GENERATION_MONOTONIC, trace,
            f"after '{label}': generation went backwards "
            f"({b.generation} -> {a.generation})",
        )
    if info["formed"] and a.generation <= b.generation:
        return _violation(
            GENERATION_MONOTONIC, trace,
            f"after '{label}': a generation formed without advancing the "
            f"generation number (still {a.generation})",
        )

    slots = [m.slot for m in a.members.values()]
    ranks = sorted(m.rank for m in a.members.values())
    if len(set(slots)) != len(slots) or len(set(ranks)) != len(ranks):
        return _violation(
            UNIQUE_RANK_PER_SLOT, trace,
            f"after '{label}': two live members share a slot or rank "
            f"(slots {sorted(slots)}, ranks {ranks})",
        )
    # Density is a formation property: evictions legitimately leave
    # holes, but the generation they puncture is fenced, not reused.
    if info["formed"] and ranks != list(range(len(ranks))):
        return _violation(
            UNIQUE_RANK_PER_SLOT, trace,
            f"after '{label}': formed ranks are not a dense 0..world-1 "
            f"assignment (ranks {ranks})",
        )

    for worker, slot, incarnation, _rank in info["formed"]:
        if (slot, incarnation) in before.crashed_lives:
            return _violation(
                INCARNATION_BUMP, trace,
                f"after '{label}': {worker} was admitted with the same "
                f"incarnation {incarnation} as a crashed life of slot "
                f"{slot} — eviction must bump the incarnation on rejoin",
            )
        previous = before.admitted.get(slot)
        if previous is not None and incarnation < previous:
            return _violation(
                INCARNATION_BUMP, trace,
                f"after '{label}': slot {slot} was admitted with "
                f"incarnation {incarnation} after already reaching "
                f"{previous}",
            )

    for generation, name in info["released"]:
        if generation != a.generation:
            return _violation(
                NO_SPLIT_BRAIN, trace,
                f"after '{label}': barrier '{name}' of generation "
                f"{generation} released while generation {a.generation} "
                f"is current — two generations are making progress",
            )
        if generation in before.fenced_generations:
            return _violation(
                FENCE_NEVER_PATCH, trace,
                f"after '{label}': barrier '{name}' released in "
                f"generation {generation} after that generation was "
                f"fenced",
            )
        barrier = a.barriers[(generation, name)]
        missing = sorted(set(a.members) - barrier.arrived)
        if missing:
            return _violation(
                BARRIER_RELEASE_FULL, trace,
                f"after '{label}': barrier '{name}' released without "
                f"{missing} of generation {generation}",
            )

    for event_type, _fields in info["events"]:
        if event_type != EVENT_COMPLETE:
            continue
        undone = sorted(
            w for w, m in a.members.items() if not m.done
        )
        if a.fenced or not a.members or undone:
            return _violation(
                COMPLETE_IMPLIES_DONE, trace,
                f"after '{label}': the run completed while "
                f"{undone or 'no members'} had not reported done "
                f"(fenced={a.fenced})",
            )
    return None


class ProtocolExplorer:
    """Exhaustive bounded-depth exploration of the membership protocol."""

    def __init__(self, config: ProtocolConfig | None = None,
                 rules: dict | None = None):
        self.config = config if config is not None else ProtocolConfig()
        self.rules = dict(COORDINATOR_RULES) if rules is None else dict(rules)

    def explore(self, depth: int = 6) -> VerificationResult:
        """BFS every reachable interleaving up to ``depth`` actions."""
        config, rules = self.config, self.rules
        start = initial_system(config)
        queue = deque([(start, ())])
        visited = {start.key()}
        states = 1
        transitions = 0
        pruned = 0
        deepest = 0
        terminal_complete = 0
        violations: list[Violation] = []

        while queue and not violations:
            system, trace = queue.popleft()
            deepest = max(deepest, len(trace))
            actions = enabled_actions(system, config, rules)
            if not actions:
                if system.coord.complete:
                    terminal_complete += 1
                else:
                    live = live_workers(system)
                    if live:
                        violations.append(_violation(
                            RENDEZVOUS_CONVERGENCE, trace,
                            f"deadlock: workers {live} are live but no "
                            f"action is enabled and the run is not "
                            f"complete (generation "
                            f"{system.coord.generation}, "
                            f"fenced={system.coord.fenced})",
                        ))
                continue
            if len(trace) >= depth:
                continue
            local = [a for a in actions if a.local]
            if local:
                chosen = local[:1]  # commute the first local action
                pruned += len(actions) - 1
            else:
                chosen = actions
            for action in chosen:
                nxt = system.clone()
                info = apply_action(nxt, action, config, rules)
                transitions += 1
                step_trace = trace + (action.label,)
                violation = check_transition(
                    system, action, nxt, info, step_trace
                )
                if violation is not None:
                    violations.append(violation)
                    break
                key = nxt.key()
                if key not in visited:
                    visited.add(key)
                    states += 1
                    queue.append((nxt, step_trace))

        return VerificationResult(
            model_name=(
                f"coordinator-protocol/w{config.world_size}"
                f"s{config.num_slots}/depth{depth}"
            ),
            kind="protocol",
            violations=violations,
            invariants_checked=PROTOCOL_INVARIANTS,
            stats={
                "depth": depth,
                "deepest_trace": deepest,
                "states": states,
                "transitions": transitions,
                "pruned": pruned,
                "terminal_complete": terminal_complete,
            },
        )

    def find(self, predicate, depth: int = 12) -> list | None:
        """Shortest trace reaching a state where ``predicate`` holds.

        ``predicate(system, trace)`` — BFS, so the first hit is minimal.
        Returns the trace as a list of action labels, or ``None`` if no
        state within ``depth`` satisfies it. Reachability probe for
        regression tests (e.g. "fence-resets-grace is reachable").
        """
        config, rules = self.config, self.rules
        start = initial_system(config)
        if predicate(start, ()):
            return []
        queue = deque([(start, ())])
        visited = {start.key()}
        while queue:
            system, trace = queue.popleft()
            if len(trace) >= depth:
                continue
            for action in enabled_actions(system, config, rules):
                nxt = system.clone()
                apply_action(nxt, action, config, rules)
                step_trace = trace + (action.label,)
                if predicate(nxt, step_trace):
                    return list(step_trace)
                key = nxt.key()
                if key not in visited:
                    visited.add(key)
                    queue.append((nxt, step_trace))
        return None


def explore_protocol(depth: int = 6, config: ProtocolConfig | None = None,
                     rules: dict | None = None) -> VerificationResult:
    """One-call entry point (the CLI's ``repro check --protocol``)."""
    return ProtocolExplorer(config=config, rules=rules).explore(depth=depth)
