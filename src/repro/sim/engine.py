"""Deterministic stream-DAG simulator.

Tasks are submitted to streams in program order; a task starts when (a) its
stream has finished every task submitted to it earlier and (b) all of its
explicit dependencies have completed. This is the CUDA stream/event
execution model the paper's Executor uses ("computations will be launched
into threads only if the events of modifying its input tensor are
completed", Section 5), and it is sufficient to reproduce every overlap
effect the evaluation measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from graphlib import CycleError, TopologicalSorter

from repro.errors import SimulationError
from repro.sim.stream import Stream
from repro.sim.timeline import Interval, Timeline


@dataclass
class SimTask:
    """One unit of simulated work.

    Attributes:
        name: unique task name.
        stream: the serialized resource this task occupies.
        duration: occupancy time in seconds.
        deps: tasks (from any stream) that must complete first.
    """

    name: str
    stream: Stream
    duration: float
    deps: tuple["SimTask", ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError(f"task {self.name!r} has negative duration")

    def __hash__(self) -> int:
        return hash(self.name)


class Simulator:
    """Builds a stream/task DAG and computes its deterministic schedule."""

    def __init__(self) -> None:
        self._streams: dict[str, Stream] = {}
        self._tasks: dict[str, SimTask] = {}
        self._order: list[SimTask] = []

    def stream(self, name: str, kind: str = "generic") -> Stream:
        """Get or create the stream with ``name``.

        A stream's ``kind`` is fixed at creation; asking for the same name
        with a different kind is a configuration bug.
        """
        existing = self._streams.get(name)
        if existing is not None:
            if kind != "generic" and existing.kind != kind:
                raise SimulationError(
                    f"stream {name!r} already exists with kind {existing.kind!r}"
                )
            return existing
        created = Stream(name=name, kind=kind)
        self._streams[name] = created
        return created

    def add_task(
        self,
        name: str,
        stream: Stream | str,
        duration: float,
        deps: tuple[SimTask, ...] | list[SimTask] = (),
    ) -> SimTask:
        """Submit a task; submission order fixes intra-stream ordering."""
        if name in self._tasks:
            raise SimulationError(f"duplicate task name {name!r}")
        if isinstance(stream, str):
            stream = self.stream(stream)
        if stream.name not in self._streams:
            raise SimulationError(f"stream {stream.name!r} belongs to another simulator")
        for dep in deps:
            if dep.name not in self._tasks:
                raise SimulationError(
                    f"task {name!r} depends on unknown task {dep.name!r}"
                )
        task = SimTask(name=name, stream=stream, duration=duration, deps=tuple(deps))
        stream._register(name)
        self._tasks[name] = task
        self._order.append(task)
        return task

    @property
    def tasks(self) -> list[SimTask]:
        return list(self._order)

    def run(self) -> Timeline:
        """Compute start/end times for every task and return the timeline."""
        # Implicit edge: previous task on the same stream.
        prev_on_stream: dict[str, SimTask] = {}
        graph: dict[str, set[str]] = {}
        for task in self._order:
            preds = {dep.name for dep in task.deps}
            prev = prev_on_stream.get(task.stream.name)
            if prev is not None:
                preds.add(prev.name)
            prev_on_stream[task.stream.name] = task
            graph[task.name] = preds

        try:
            topo = list(TopologicalSorter(graph).static_order())
        except CycleError as exc:
            raise SimulationError(f"cyclic task dependencies: {exc}") from exc

        end_time: dict[str, float] = {}
        intervals: list[Interval] = []
        for name in topo:
            task = self._tasks[name]
            ready = max((end_time[p] for p in graph[name]), default=0.0)
            end_time[name] = ready + task.duration
            intervals.append(
                Interval(
                    task=name,
                    stream=task.stream.name,
                    kind=task.stream.kind,
                    start=ready,
                    end=end_time[name],
                )
            )
        return Timeline(intervals)
