"""Execution timeline recording and utilization analysis.

The paper's motivating measurements are utilization numbers ("nearly 80% of
the iteration time is idle" with SSD, Section 4.3); the timeline computes
exactly those statistics from a simulated schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import defaultdict

from repro.errors import SimulationError


@dataclass(frozen=True)
class Interval:
    """One task occupancy on one stream."""

    task: str
    stream: str
    kind: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Completed simulation schedule with per-stream statistics."""

    def __init__(self, intervals: list[Interval]):
        for iv in intervals:
            if iv.end < iv.start:
                raise SimulationError(f"interval {iv.task} ends before it starts")
        self._intervals = sorted(intervals, key=lambda iv: (iv.start, iv.stream))

    @property
    def intervals(self) -> list[Interval]:
        return list(self._intervals)

    @property
    def makespan(self) -> float:
        """End time of the last task (0 for an empty timeline)."""
        if not self._intervals:
            return 0.0
        return max(iv.end for iv in self._intervals)

    def busy_time(self, stream: str | None = None, kind: str | None = None) -> float:
        """Total occupied time, optionally filtered by stream or kind.

        Within one stream intervals never overlap, so a straight sum is the
        busy time. Filtering by ``kind`` sums across streams of that kind.
        """
        total = 0.0
        for iv in self._intervals:
            if stream is not None and iv.stream != stream:
                continue
            if kind is not None and iv.kind != kind:
                continue
            total += iv.duration
        return total

    def utilization(self, stream: str | None = None, kind: str | None = None) -> float:
        """Busy fraction of the makespan for the selected streams.

        For a ``kind`` filter spanning N streams the denominator is
        N * makespan, i.e. the mean utilization across those streams.
        """
        span = self.makespan
        if span == 0.0:
            return 0.0
        names = {iv.stream for iv in self._intervals}
        if stream is not None:
            names = {stream}
        elif kind is not None:
            names = {iv.stream for iv in self._intervals if iv.kind == kind}
        if not names:
            return 0.0
        return self.busy_time(stream=stream, kind=kind) / (len(names) * span)

    def idle_fraction(self, kind: str) -> float:
        """Mean idle fraction of streams of ``kind`` — the paper's '80% idle'."""
        return 1.0 - self.utilization(kind=kind)

    def per_stream(self) -> dict[str, float]:
        """Busy time keyed by stream name."""
        busy: dict[str, float] = defaultdict(float)
        for iv in self._intervals:
            busy[iv.stream] += iv.duration
        return dict(busy)

    def critical_stream(self) -> str | None:
        """The stream with the most busy time (the bottleneck resource)."""
        busy = self.per_stream()
        if not busy:
            return None
        return max(busy, key=busy.get)

    def end_of(self, task: str) -> float:
        for iv in self._intervals:
            if iv.task == task:
                return iv.end
        raise SimulationError(f"no task named {task!r} in timeline")
