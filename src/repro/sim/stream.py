"""Serialized execution streams.

A stream models one physical resource that executes work items strictly in
submission order: a GPU compute stream, a per-GPU PCIe H2D/D2H channel, an
NVLink/NCCL channel, a CPU update thread, or an SSD I/O queue. This mirrors
the Executor in Angel-PTM, which "maintains a separate stream for each of
these computational devices" (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class Stream:
    """One serialized resource inside a :class:`~repro.sim.engine.Simulator`.

    Attributes:
        name: unique stream name, e.g. ``gpu0.compute`` or ``gpu0.h2d``.
        kind: free-form grouping label used by utilization reports
            (``compute``, ``pcie``, ``nccl``, ``cpu``, ``ssd``).
    """

    name: str
    kind: str = "generic"
    _task_names: list[str] = field(default_factory=list, repr=False)

    def _register(self, task_name: str) -> int:
        """Record a task's position in this stream's FIFO order."""
        if not task_name:
            raise SimulationError("task name must be non-empty")
        self._task_names.append(task_name)
        return len(self._task_names) - 1

    @property
    def task_names(self) -> tuple[str, ...]:
        return tuple(self._task_names)
