"""Timeline export to the Chrome trace-event format.

A simulated iteration's timeline can be inspected visually in
``chrome://tracing`` / Perfetto: one row per stream (GPU compute, PCIe
H2D/D2H, NCCL, CPU, SSD), one slice per task. This is the artifact a
systems engineer would use to eyeball Algorithm 1's overlap.

The serialization itself (metadata rows, slice emission, tid assignment)
lives in :mod:`repro.telemetry.chrome`, shared with the runtime span
tracer so simulated and functional traces render identically.
"""

from __future__ import annotations

from repro.sim.timeline import Timeline
from repro.telemetry.chrome import (
    TraceSlice,
    build_chrome_trace,
    save_chrome_trace_json,
)

#: Stable track ordering for the usual stream kinds.
_KIND_ORDER = {"compute": 0, "pcie": 1, "nccl": 2, "cpu": 3, "ssd": 4}


def to_chrome_trace(timeline: Timeline, time_unit: float = 1e-3) -> dict:
    """Convert a timeline to a Chrome trace-event JSON object.

    ``time_unit`` scales simulated seconds into trace microseconds
    (default: 1 simulated ms -> 1 trace us, keeping long iterations
    navigable).
    """
    streams = sorted(
        {(iv.stream, iv.kind) for iv in timeline.intervals},
        key=lambda pair: (_KIND_ORDER.get(pair[1], 99), pair[0]),
    )
    slices = [
        TraceSlice(
            name=iv.task,
            track=iv.stream,
            category=iv.kind,
            start_us=iv.start / time_unit,
            dur_us=iv.duration / time_unit,
        )
        for iv in timeline.intervals
    ]
    return build_chrome_trace(
        slices,
        track_order=[stream for stream, _ in streams],
        other_data={"makespan_seconds": timeline.makespan},
    )


def save_chrome_trace(timeline: Timeline, path: str, time_unit: float = 1e-3) -> None:
    """Write the Chrome trace JSON to ``path``."""
    save_chrome_trace_json(to_chrome_trace(timeline, time_unit), path)
