"""Timeline export to the Chrome trace-event format.

A simulated iteration's timeline can be inspected visually in
``chrome://tracing`` / Perfetto: one row per stream (GPU compute, PCIe
H2D/D2H, NCCL, CPU, SSD), one slice per task. This is the artifact a
systems engineer would use to eyeball Algorithm 1's overlap.
"""

from __future__ import annotations

import json

from repro.sim.timeline import Timeline

#: Stable track ordering for the usual stream kinds.
_KIND_ORDER = {"compute": 0, "pcie": 1, "nccl": 2, "cpu": 3, "ssd": 4}


def to_chrome_trace(timeline: Timeline, time_unit: float = 1e-3) -> dict:
    """Convert a timeline to a Chrome trace-event JSON object.

    ``time_unit`` scales simulated seconds into trace microseconds
    (default: 1 simulated ms -> 1 trace us, keeping long iterations
    navigable).
    """
    streams = sorted(
        {(iv.stream, iv.kind) for iv in timeline.intervals},
        key=lambda pair: (_KIND_ORDER.get(pair[1], 99), pair[0]),
    )
    tid_of = {stream: tid for tid, (stream, _) in enumerate(streams)}
    events = [
        {
            "name": stream,
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "cat": "__metadata",
            "args": {"name": stream},
        }
        for stream, tid in tid_of.items()
    ]
    for iv in timeline.intervals:
        events.append(
            {
                "name": iv.task,
                "cat": iv.kind,
                "ph": "X",
                "pid": 0,
                "tid": tid_of[iv.stream],
                "ts": iv.start / time_unit,
                "dur": max(iv.duration / time_unit, 0.001),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"makespan_seconds": timeline.makespan},
    }


def save_chrome_trace(timeline: Timeline, path: str, time_unit: float = 1e-3) -> None:
    """Write the Chrome trace JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(timeline, time_unit), handle)
