"""Discrete-event simulation substrate.

The throughput and scalability experiments of the paper (Tables 5-6,
Figures 7-9) depend on *when* computations, PCIe movements, collectives and
SSD I/O overlap. This package provides a deterministic stream-based
simulator: tasks execute on serialized streams (one per physical resource,
mirroring CUDA streams and link channels) and may depend on tasks from
other streams, which is exactly the execution model of the paper's Executor
and Communicator (Section 5).
"""

from repro.sim.engine import Simulator, SimTask
from repro.sim.stream import Stream
from repro.sim.timeline import Interval, Timeline
from repro.sim.trace_export import save_chrome_trace, to_chrome_trace

__all__ = [
    "Simulator",
    "SimTask",
    "Stream",
    "Timeline",
    "Interval",
    "to_chrome_trace",
    "save_chrome_trace",
]
