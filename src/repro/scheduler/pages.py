"""Logical page tables for scheduling.

The scheduler reasons about each rank's parameter shard at page
granularity. ``build_layer_pages`` partitions one rank's FP16 parameter
shard of every layer into logical pages of the configured page size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.memory.page import DEFAULT_PAGE_BYTES
from repro.tracer.tracer import IterationTrace
from repro.zero.sharding import shard_bytes


@dataclass(frozen=True)
class LayerPages:
    """One layer's per-rank parameter-shard pages."""

    layer_index: int
    num_pages: int
    page_bytes: int
    shard_bytes: int
    gathered_bytes: int  # full FP16 params of the layer once all-gathered

    def __post_init__(self) -> None:
        if self.num_pages <= 0:
            raise SchedulingError(
                f"layer {self.layer_index} has no pages; shard too small?"
            )

    @property
    def total_page_bytes(self) -> int:
        return self.num_pages * self.page_bytes

    def page_nbytes(self, page_id: int) -> int:
        """Physical size of one page.

        Pages are fixed-size (the paper's minimum unit of memory
        operations): a partially-filled tail still reserves a whole page,
        and the scheduler's memory arithmetic must count it as such so
        that physical pools never overflow a plan the model declared
        feasible.
        """
        if not 0 <= page_id < self.num_pages:
            raise SchedulingError(
                f"page {page_id} outside layer {self.layer_index}'s "
                f"{self.num_pages} pages"
            )
        return self.page_bytes


def build_layer_pages(
    trace: IterationTrace,
    num_ranks: int,
    page_bytes: int = DEFAULT_PAGE_BYTES,
) -> list[LayerPages]:
    """Partition each layer's per-rank FP16 parameter shard into pages."""
    if num_ranks <= 0:
        raise SchedulingError("num_ranks must be positive")
    tables: list[LayerPages] = []
    for layer in trace.layers:
        shard = shard_bytes(layer.param_bytes_fp16, num_ranks)
        num_pages = max(1, math.ceil(shard / page_bytes))
        # Gathered buffers are also assembled from pages, so their
        # footprint rounds up to page granularity.
        gathered = math.ceil(layer.param_bytes_fp16 / page_bytes) * page_bytes
        tables.append(
            LayerPages(
                layer_index=layer.layer_index,
                num_pages=num_pages,
                page_bytes=page_bytes,
                shard_bytes=shard,
                gathered_bytes=gathered,
            )
        )
    return tables
