"""Fine-grained life-time based scheduling — Algorithm 1 of the paper.

Phase 1 prioritizes ``move_to_gpu`` tasks: every shard page is optimistically
scheduled at trigger 0 (CPU-GPU transfer at 32 GB/s is the scarce path,
so it starts as early as possible); whenever a layer's computation would
not fit, the most recently scheduled movements are revoked — a
not-yet-executed move is simply removed, while a page already resident
gets an explicit ``move_to_cpu`` eviction — and parked on a wait stack to
be re-inserted as memory frees up. ``all_gather`` and ``compute`` tasks
are appended per layer on demand.

Phase 2 advances each ``all_gather`` to the earliest trigger that does not
cause an out-of-memory condition, maximizing its overlap with preceding
computation. A gather can never advance before the movement interval that
makes its layer's pages resident.

Every page's GPU presence is tracked as explicit residency intervals, so
the emitted schedule is *executable*: the runtime executor replays it
against physical pools and verifies that every gather finds its pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OutOfMemoryError, SchedulingError
from repro.scheduler.memory_model import MemoryModel
from repro.scheduler.pages import LayerPages
from repro.scheduler.tasks import Operation, Schedule, ScheduledTask
from repro.tracer.tracer import IterationTrace


@dataclass(frozen=True)
class _PageRef:
    layer_index: int
    page_id: int
    nbytes: int


class LifetimeScheduler:
    """Runs Algorithm 1 for one data-parallel rank."""

    def __init__(
        self,
        trace: IterationTrace,
        layer_pages: list[LayerPages],
        memory: MemoryModel,
    ):
        if len(layer_pages) != trace.num_layers:
            raise SchedulingError("layer page table does not match the trace")
        self._trace = trace
        self._pages = layer_pages
        self._memory = memory
        # Natural residency horizon of a layer's pages: its backward op.
        self._residency_end = [layer.bwd_id for layer in trace.layers]
        # GPU-presence intervals per (layer, page): list of [start, end].
        self._intervals: dict[tuple[int, int], list[list[int]]] = {}
        # Pages currently planned to be on the GPU (revocation must not
        # "free" the same page twice).
        self._planned_on_gpu: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def schedule(self) -> Schedule:
        plan = self._phase_one()
        self._phase_two(plan)
        return plan

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def _compute_ops(self) -> list[tuple[int, int]]:
        """(op_id, layer_index) for forward then backward computations."""
        ops = [(layer.fwd_id, layer.layer_index) for layer in self._trace.layers]
        ops += [
            (layer.bwd_id, layer.layer_index)
            for layer in reversed(self._trace.layers)
        ]
        return ops

    def _phase_one(self) -> Schedule:
        plan = Schedule()
        wait_stack: list[_PageRef] = []
        memory = self._memory

        # Lines 3-5: optimistically move every page at trigger 0.
        for table in self._pages:
            for page_id in range(table.num_pages):
                ref = _PageRef(table.layer_index, page_id, table.page_nbytes(page_id))
                self._add_move(plan, ref, trigger=0)

        # Lines 6-15, extended over forward and backward computations.
        for op_id, layer_index in self._compute_ops():
            table = self._pages[layer_index]
            gathered = table.gathered_bytes

            # A layer cannot be gathered while its own pages are parked:
            # force their movement at this trigger (the gather reads them).
            for ref in [r for r in wait_stack if r.layer_index == layer_index]:
                wait_stack.remove(ref)
                self._add_move(plan, ref, trigger=op_id)

            # Lines 7-9: revoke the most recent movements until the
            # layer's gathered working set fits at this op.
            while memory.available_at(op_id) < gathered:
                ref = self._revoke_last_movement(
                    plan, protect_layer=layer_index, current_op=op_id
                )
                if ref is None:
                    raise OutOfMemoryError(
                        device="gpu",
                        requested_bytes=gathered,
                        available_bytes=int(memory.available_at(op_id)),
                    )
                wait_stack.append(ref)

            # Lines 10-12: gather and compute.
            plan.append(
                ScheduledTask(
                    operation=Operation.ALL_GATHER,
                    layer_index=layer_index,
                    trigger_id=op_id,
                    nbytes=gathered,
                    op_id=op_id,
                )
            )
            memory.add_resident(gathered, op_id, op_id)
            plan.append(
                ScheduledTask(
                    operation=Operation.COMPUTE,
                    layer_index=layer_index,
                    trigger_id=op_id,
                    op_id=op_id,
                )
            )

            # Lines 13-15: reschedule parked pages while memory allows.
            while wait_stack:
                ref = wait_stack[-1]
                end = self._residency_end[ref.layer_index]
                if end < op_id:
                    # Its layer's backward already passed; the page is no
                    # longer needed on GPU this iteration.
                    wait_stack.pop()
                    continue
                if memory.min_available(op_id, end) <= ref.nbytes:
                    break
                wait_stack.pop()
                self._add_move(plan, ref, trigger=op_id)

        return plan

    def _add_move(self, plan: Schedule, ref: _PageRef, trigger: int) -> None:
        end = self._residency_end[ref.layer_index]
        if trigger > end:
            raise SchedulingError(
                f"move of layer {ref.layer_index} page {ref.page_id} scheduled "
                f"after its residency window"
            )
        plan.append(
            ScheduledTask(
                operation=Operation.MOVE_TO_GPU,
                layer_index=ref.layer_index,
                page_id=ref.page_id,
                trigger_id=trigger,
                nbytes=ref.nbytes,
            )
        )
        self._memory.add_resident(ref.nbytes, trigger, end)
        self._intervals.setdefault((ref.layer_index, ref.page_id), []).append(
            [trigger, end]
        )
        self._planned_on_gpu.add((ref.layer_index, ref.page_id))

    def _revoke_last_movement(
        self, plan: Schedule, protect_layer: int, current_op: int
    ) -> _PageRef | None:
        """Free the memory of the most recently planned movement.

        A move with trigger >= ``current_op`` has not executed yet: it is
        deleted outright. A move that already executed (trigger <
        current_op) but whose page is still needed later gets an explicit
        ``move_to_cpu`` eviction at ``current_op`` — the page served its
        earlier gathers and will be re-staged from the wait stack before
        its next use. Pages of ``protect_layer`` and pages whose backward
        already passed are skipped.
        """
        for index in range(len(plan.tasks) - 1, -1, -1):
            task = plan.tasks[index]
            if task.operation != Operation.MOVE_TO_GPU:
                continue
            if task.layer_index == protect_layer:
                continue
            end = self._residency_end[task.layer_index]
            if end <= current_op:
                continue
            key = (task.layer_index, task.page_id)
            if key not in self._planned_on_gpu:
                continue  # already revoked via a later move of this page
            ref = _PageRef(task.layer_index, task.page_id, task.nbytes)
            if task.trigger_id >= current_op:
                # Not yet executed: remove the plan entry entirely.
                del plan.tasks[index]
                self._memory.remove_resident(task.nbytes, task.trigger_id, end)
                self._pop_interval(key, task.trigger_id)
                self._planned_on_gpu.discard(key)
                return ref
            # Already resident: evict from current_op onward.
            plan.append(
                ScheduledTask(
                    operation=Operation.MOVE_TO_CPU,
                    layer_index=task.layer_index,
                    page_id=task.page_id,
                    trigger_id=current_op,
                    nbytes=task.nbytes,
                )
            )
            self._memory.remove_resident(task.nbytes, current_op, end)
            self._truncate_interval(key, task.trigger_id, current_op - 1)
            self._planned_on_gpu.discard(key)
            return ref
        return None

    def _pop_interval(self, key: tuple[int, int], start: int) -> None:
        intervals = self._intervals.get(key, [])
        for i in range(len(intervals) - 1, -1, -1):
            if intervals[i][0] == start:
                del intervals[i]
                return
        raise SchedulingError(f"no residency interval starting at {start} for {key}")

    def _truncate_interval(self, key: tuple[int, int], start: int, new_end: int) -> None:
        for interval in self._intervals.get(key, []):
            if interval[0] == start:
                interval[1] = new_end
                return
        raise SchedulingError(f"no residency interval starting at {start} for {key}")

    # ------------------------------------------------------------------
    # Phase 2
    # ------------------------------------------------------------------
    def _presence_start(self, layer_index: int, op_id: int) -> int:
        """Start of the residency interval covering ``op_id`` for the
        slowest page of ``layer_index`` (the gather's readiness bound)."""
        latest_start = 0
        for page_id in range(self._pages[layer_index].num_pages):
            intervals = self._intervals.get((layer_index, page_id), [])
            covering = [iv for iv in intervals if iv[0] <= op_id <= iv[1]]
            if not covering:
                raise SchedulingError(
                    f"layer {layer_index} page {page_id} not resident at "
                    f"op {op_id} — the schedule is invalid"
                )
            latest_start = max(latest_start, covering[0][0])
        return latest_start

    def _phase_two(self, plan: Schedule) -> None:
        """Advance all-gathers to the earliest OOM-free trigger
        (lines 18-21)."""
        for index, task in enumerate(plan.tasks):
            if task.operation != Operation.ALL_GATHER:
                continue
            deadline = task.op_id
            earliest_ready = self._presence_start(task.layer_index, deadline)
            if deadline == 0:
                continue
            # The gathered buffer already occupies [deadline, deadline];
            # advancing the trigger extends it over [t, deadline - 1].
            best = self._memory.earliest_feasible(task.nbytes, deadline - 1, deadline - 1)
            if best is None:
                continue
            # Never delay past the original trigger (Phase 2 only
            # advances); the layer's own pages also gate the gather.
            best = min(max(best, earliest_ready), task.trigger_id)
            if best < task.trigger_id:
                self._memory.add_resident(task.nbytes, best, task.trigger_id - 1)
                plan.tasks[index] = ScheduledTask(
                    operation=Operation.ALL_GATHER,
                    layer_index=task.layer_index,
                    trigger_id=best,
                    nbytes=task.nbytes,
                    op_id=task.op_id,
                )
