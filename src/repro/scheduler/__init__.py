"""The Unified Scheduler (Section 4.2 of the paper).

The scheduler consumes the Tracer's life-time statistics and produces a
task schedule ``{operation, page, trigger_id}`` via the two-phase
fine-grained life-time based scheduling of Algorithm 1. The
:class:`UnifiedScheduler` then coordinates the Allocator (page movements),
Executor (compute streams) and Communicator (collectives) to replay that
schedule, either on the discrete-event simulator (paper-scale experiments)
or against the functional memory tiers.
"""

from repro.scheduler.tasks import Operation, Schedule, ScheduledTask
from repro.scheduler.pages import LayerPages, build_layer_pages
from repro.scheduler.memory_model import MemoryModel
from repro.scheduler.lifetime import LifetimeScheduler
from repro.scheduler.cache import CachePlan, plan_gpu_cache
from repro.scheduler.unified import IterationPlan, IterationResult, UnifiedScheduler, plan_iteration

__all__ = [
    "IterationPlan",
    "plan_iteration",
    "Operation",
    "ScheduledTask",
    "Schedule",
    "LayerPages",
    "build_layer_pages",
    "MemoryModel",
    "LifetimeScheduler",
    "CachePlan",
    "plan_gpu_cache",
    "UnifiedScheduler",
    "IterationResult",
]
