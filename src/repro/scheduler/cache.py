"""Dynamic GPU cache of optimizer states (Section 4.2).

"If sufficient space is available, we reserve a portion of the GPU memory
as the cache to store a segment of the CPU's optimizer states.
Additionally, we move the relevant CPU computations to the GPUs ... we
dynamically make cache size decisions for each model based on its tensor
lifetime information, ensuring training without encountering GPU
out-of-memory errors."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.scheduler.memory_model import MemoryModel
from repro.scheduler.pages import LayerPages
from repro.tracer.tracer import IterationTrace
from repro.zero.sharding import shard_bytes


@dataclass(frozen=True)
class CachePlan:
    """Which layers' optimizer-state shards live permanently on the GPU."""

    cached_layers: frozenset[int]
    cache_bytes: int
    layer_bytes: dict[int, int]

    def is_cached(self, layer_index: int) -> bool:
        return layer_index in self.cached_layers

    @property
    def num_cached(self) -> int:
        return len(self.cached_layers)


def plan_gpu_cache(
    trace: IterationTrace,
    layer_pages: list[LayerPages],
    gpu_budget_bytes: int,
    num_ranks: int,
    use_recompute: bool = True,
    safety_fraction: float = 0.05,
    telemetry=None,
) -> CachePlan:
    """Choose the optimizer-state layers to pin in GPU memory.

    The upper bound on cacheable bytes is the budget minus the worst-case
    working set: the trace's peak transient load plus the whole parameter
    shard resident plus the largest gathered layer. Layers are admitted in
    update order (last layer first — its gradients arrive first, so its
    GPU update overlaps the most backward computation).
    """
    if not 0 <= safety_fraction < 1:
        raise SchedulingError("safety_fraction must be in [0, 1)")
    base = MemoryModel(
        trace, gpu_budget_bytes, num_ranks=num_ranks, cache_bytes=0,
        use_recompute=use_recompute,
    )
    shard_total = sum(table.shard_bytes for table in layer_pages)
    largest_gathered = max(table.gathered_bytes for table in layer_pages)
    working_set = base.peak_live() + shard_total + largest_gathered
    leftover = gpu_budget_bytes * (1 - safety_fraction) - working_set
    cached: set[int] = set()
    layer_bytes: dict[int, int] = {}
    total = 0
    for layer in reversed(trace.layers):
        optim_shard = shard_bytes(layer.optim_bytes_fp32, num_ranks)
        if total + optim_shard > leftover:
            break
        cached.add(layer.layer_index)
        layer_bytes[layer.layer_index] = optim_shard
        total += optim_shard
    if telemetry is not None:
        telemetry.gauge("cache.layers_cached").set(len(cached))
        telemetry.gauge("cache.bytes").set(total)
    return CachePlan(
        cached_layers=frozenset(cached), cache_bytes=total, layer_bytes=layer_bytes
    )
