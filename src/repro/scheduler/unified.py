"""The Unified Scheduler: coordinates Allocator, Executor and Communicator.

Takes the Tracer statistics, runs Algorithm 1, plans the dynamic GPU cache
and replays the resulting task schedule on the discrete-event simulator.
One data-parallel rank is simulated (ranks are symmetric under ZeRO data
parallelism); collective durations already account for the full ring.

Stream layout mirrors Section 5's implementation: a GPU compute stream, a
CPU update stream, per-direction PCIe channels, an NCCL channel, and an
SSD I/O queue.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.hardware.cluster import ClusterSpec
from repro.memory.page import DEFAULT_PAGE_BYTES
from repro.models.zoo import ModelConfig
from repro.scheduler.cache import CachePlan, plan_gpu_cache
from repro.scheduler.lifetime import LifetimeScheduler
from repro.scheduler.memory_model import MemoryModel
from repro.scheduler.pages import LayerPages, build_layer_pages
from repro.scheduler.tasks import Operation, Schedule
from repro.sim.engine import Simulator, SimTask
from repro.sim.timeline import Timeline
from repro.tracer.costmodel import CostModel
from repro.tracer.tracer import IterationTrace, Tracer
from repro.zero.collectives import CollectiveModel
from repro.zero.sharding import shard_bytes


@dataclass(frozen=True)
class IterationPlan:
    """Everything derived for one training iteration."""

    trace: IterationTrace
    schedule: Schedule
    cache: CachePlan
    layer_pages: list[LayerPages]
    num_ranks: int
    micro_batch: int


def plan_iteration(
    trace: IterationTrace,
    gpu_budget_bytes: int,
    num_ranks: int = 1,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    micro_batch: int = 1,
    use_recompute: bool = True,
    telemetry=None,
) -> IterationPlan:
    """Run the planning pipeline on an already-obtained trace.

    This is THE planning path: :meth:`UnifiedScheduler.plan` feeds it the
    analytic Tracer's trace, and the live functional engine feeds it the
    trace recorded from its own first iteration (see
    :mod:`repro.engine.liveplan`) — so one :class:`IterationPlan` object
    flows sim → live engine → verifier without re-planning.
    """
    layer_pages = build_layer_pages(trace, num_ranks, page_bytes)
    cache = plan_gpu_cache(
        trace, layer_pages, gpu_budget_bytes, num_ranks,
        use_recompute=use_recompute,
        telemetry=telemetry if telemetry is not None and telemetry.enabled else None,
    )
    memory = MemoryModel(
        trace,
        gpu_budget_bytes,
        num_ranks=num_ranks,
        cache_bytes=cache.cache_bytes,
        use_recompute=use_recompute,
    )
    schedule = LifetimeScheduler(trace, layer_pages, memory).schedule()
    return IterationPlan(
        trace=trace,
        schedule=schedule,
        cache=cache,
        layer_pages=layer_pages,
        num_ranks=num_ranks,
        micro_batch=micro_batch,
    )


@dataclass(frozen=True)
class IterationResult:
    """Outcome of simulating one iteration on one rank."""

    iteration_time: float
    samples_per_second: float
    timeline: Timeline
    gpu_busy_fraction: float
    pcie_busy_fraction: float
    update_sweep_time: float
    staleness: float
    plan: IterationPlan = field(repr=False, default=None)

    def breakdown(self) -> dict[str, float]:
        """Stream-kind busy times and their fraction of the iteration.

        Returns ``{kind: seconds, f"{kind}_fraction": fraction, ...}`` for
        the compute/pcie/nccl/cpu/ssd stream kinds plus the bottleneck
        stream — the view the CLI and examples print.
        """
        out: dict[str, float] = {}
        for kind in ("compute", "pcie", "nccl", "cpu", "ssd"):
            busy = self.timeline.busy_time(kind=kind)
            out[kind] = busy
            out[f"{kind}_fraction"] = (
                busy / self.iteration_time if self.iteration_time else 0.0
            )
        out["critical_stream"] = self.timeline.critical_stream()
        return out


class UnifiedScheduler:
    """Plans and simulates Angel-PTM iterations on a given cluster."""

    #: Relative cost the event-driven scheduler adds to every
    #: computation (hooks, page bookkeeping, event dispatch). The paper
    #: measures it as a ~2.4% slowdown against vanilla data parallelism on
    #: the 1.7B model (Section 6.3).
    OP_OVERHEAD_FRACTION = 0.03

    def __init__(
        self,
        cluster: ClusterSpec,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        use_recompute: bool = True,
        gpu_reserve_fraction: float = 0.08,
        cost_model: CostModel | None = None,
        telemetry=None,
    ):
        self.cluster = cluster
        self.page_bytes = page_bytes
        self.use_recompute = use_recompute
        if not 0 <= gpu_reserve_fraction < 1:
            raise SchedulingError("gpu_reserve_fraction must be in [0, 1)")
        self.gpu_reserve_fraction = gpu_reserve_fraction
        server = cluster.server
        self.cost = cost_model or CostModel(gpu=server.gpus[0], cpu=server.cpu)
        if telemetry is None:
            from repro.telemetry.core import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        #: repro.telemetry.Telemetry: planning/simulation spans, cache-plan
        #: gauges and simulated collective byte counters.
        self.telemetry = telemetry
        self.collectives = CollectiveModel(
            cluster, telemetry=telemetry if telemetry.enabled else None
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    @property
    def gpu_budget(self) -> int:
        """Per-GPU bytes available to the scheduler after the framework
        reserve (CUDA context, workspaces, fragmentation headroom)."""
        per_gpu = self.cluster.server.gpus[0].memory_bytes
        return int(per_gpu * (1 - self.gpu_reserve_fraction))

    def plan(self, config: ModelConfig, micro_batch: int, seq_len: int = 2048) -> IterationPlan:
        """Trace the model, size the GPU cache and run Algorithm 1."""
        with self.telemetry.span(f"plan/{config.name}", track="scheduler"):
            model = config.build(batch_size=micro_batch, seq_len=seq_len)
            tracer = Tracer(self.cost, use_recompute=self.use_recompute)
            trace = tracer.trace(model)
            return plan_iteration(
                trace,
                self.gpu_budget,
                num_ranks=self.cluster.num_gpus,
                page_bytes=self.page_bytes,
                micro_batch=micro_batch,
                use_recompute=self.use_recompute,
                telemetry=self.telemetry,
            )

    def validate(self, plan: IterationPlan):
        """Replay ``plan`` against physical page pools (see
        :mod:`repro.runtime`): raises if the schedule would OOM or gather
        a layer before its pages arrive. Returns the execution report."""
        from repro.runtime.executor import ScheduleExecutor

        with ScheduleExecutor(plan, self.gpu_budget, self.page_bytes) as executor:
            return executor.run()

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        config: ModelConfig,
        micro_batch: int | None,
        seq_len: int = 2048,
        use_ssd: bool = False,
        lock_free: bool = False,
    ) -> IterationResult:
        """Simulate one steady-state iteration and report throughput.

        ``micro_batch=None`` picks the largest feasible micro-batch via
        the capacity planner (the paper trains "with the maximum batch
        size", Section 6.3).
        """
        if micro_batch is None:
            from repro.engine.planner import CapacityPlanner

            planner = CapacityPlanner(self.cluster, cost_model=self.cost)
            micro_batch = planner.max_micro_batch(
                config, "angel-ptm", seq_len=seq_len, use_ssd=use_ssd
            )
        plan = self.plan(config, micro_batch, seq_len)
        return self.simulate_plan(plan, use_ssd=use_ssd, lock_free=lock_free)

    def simulate_plan(
        self,
        plan: IterationPlan,
        use_ssd: bool = False,
        lock_free: bool = False,
        steady_state: bool = False,
    ) -> IterationResult:
        """Replay the plan on the DES and report iteration metrics.

        ``steady_state=True`` chains two iterations — iteration 2's
        parameter movements wait on iteration 1's corresponding updates —
        and reports the marginal (steady-state) iteration time, which is
        what long pre-training runs actually observe.
        """
        with self.telemetry.span("simulate_plan", track="scheduler"):
            return self._simulate_plan(
                plan, use_ssd=use_ssd, lock_free=lock_free,
                steady_state=steady_state,
            )

    def _simulate_plan(
        self,
        plan: IterationPlan,
        use_ssd: bool = False,
        lock_free: bool = False,
        steady_state: bool = False,
    ) -> IterationResult:
        sim = Simulator()
        first = self._build_iteration(
            sim, plan, use_ssd=use_ssd, prefix="", prev=None,
            lock_free=lock_free,
        )
        second = None
        if steady_state:
            second = self._build_iteration(
                sim, plan, use_ssd=use_ssd, prefix="i2.", prev=first,
                lock_free=lock_free,
            )

        timeline = sim.run()

        def ends(iteration):
            gpu_end = max(
                (timeline.end_of(t.name) for t in iteration["computes"].values()),
                default=0.0,
            )
            gpu_end = max(
                gpu_end,
                max(
                    (timeline.end_of(t.name) for t in iteration["offloads"].values()),
                    default=0.0,
                ),
            )
            all_end = max(
                (timeline.end_of(t.name) for t in iteration["updates"]),
                default=gpu_end,
            )
            return gpu_end, max(all_end, gpu_end)

        first_gpu_end, first_all_end = ends(first)
        if steady_state:
            second_gpu_end, second_all_end = ends(second)
            gpu_path = second_gpu_end - first_gpu_end
            full_time = second_all_end - first_all_end
        else:
            gpu_path = first_gpu_end
            full_time = first_all_end
        update_sweep = max(0.0, first_all_end - min(
            (timeline.end_of(t.name) for t in first["offloads"].values()),
            default=0.0,
        ))
        if lock_free:
            # Algorithm 2 decouples updates from the GPU path: the
            # iteration is GPU-bound and the update sweep lags behind,
            # folding accumulated gradients into each pass.
            iteration_time = gpu_path
            staleness = update_sweep / gpu_path if gpu_path > 0 else 0.0
        else:
            iteration_time = full_time
            staleness = 0.0
        global_batch = plan.micro_batch * plan.num_ranks
        return IterationResult(
            iteration_time=iteration_time,
            samples_per_second=global_batch / iteration_time if iteration_time else 0.0,
            timeline=timeline,
            gpu_busy_fraction=timeline.utilization(stream="gpu"),
            pcie_busy_fraction=timeline.utilization(kind="pcie"),
            update_sweep_time=update_sweep,
            staleness=staleness,
            plan=plan,
        )

    def _build_iteration(
        self,
        sim: Simulator,
        plan: IterationPlan,
        use_ssd: bool,
        prefix: str,
        prev: dict | None,
        lock_free: bool = False,
    ) -> dict:
        """Add one iteration's task graph; returns its task handles.

        When ``prev`` is given (steady-state mode), each layer's parameter
        movement additionally waits for that layer's update in the
        previous iteration — stale parameters cannot be staged.
        """
        trace = plan.trace
        server = self.cluster.server
        num_ranks = plan.num_ranks
        gpu = sim.stream("gpu", "compute")
        h2d = sim.stream("h2d", "pcie")
        d2h = sim.stream("d2h", "pcie")
        nccl = sim.stream("nccl", "nccl")
        cpu = sim.stream("cpu", "cpu")
        ssd = sim.stream("ssd", "ssd")

        compute_tasks: dict[int, SimTask] = {}
        gather_tasks: dict[int, SimTask] = {}
        offload_tasks: dict[int, SimTask] = {}
        update_of_layer: dict[int, SimTask] = {}
        update_tasks: list[SimTask] = []

        # Group movement tasks by (trigger, layer) to coalesce PCIe bursts.
        moves: dict[int, dict[int, int]] = defaultdict(lambda: defaultdict(int))
        evictions: dict[int, dict[int, int]] = defaultdict(lambda: defaultdict(int))
        gathers: dict[int, list] = defaultdict(list)
        computes: dict[int, int] = {}
        for task in plan.schedule:
            if task.operation == Operation.MOVE_TO_GPU:
                moves[task.trigger_id][task.layer_index] += task.nbytes
            elif task.operation == Operation.MOVE_TO_CPU:
                evictions[task.trigger_id][task.layer_index] += task.nbytes
            elif task.operation == Operation.ALL_GATHER:
                gathers[task.trigger_id].append(task)
            elif task.operation == Operation.COMPUTE:
                computes[task.op_id] = task.layer_index

        layer_by_index = {layer.layer_index: layer for layer in trace.layers}
        seen_bwd: set[int] = set()

        for op_id in sorted(computes):
            trigger_dep = (
                [compute_tasks[op_id - 1]] if op_id - 1 in compute_tasks else []
            )
            # Movement and gather tasks released at this trigger.
            for layer_index, nbytes in sorted(evictions.get(op_id, {}).items()):
                sim.add_task(
                    f"{prefix}evict.l{layer_index}.t{op_id}",
                    d2h,
                    server.pcie.transfer_time(nbytes),
                    deps=trigger_dep,
                )
            for layer_index, nbytes in sorted(moves.get(op_id, {}).items()):
                deps = list(trigger_dep)
                if (
                    prev is not None
                    and not lock_free
                    and layer_index in prev["update_of_layer"]
                ):
                    # Steady state: re-staging waits for the previous
                    # iteration's refreshed parameters. Under the
                    # lock-free mechanism the GPU reads the buffered
                    # (possibly stale) parameters and never waits.
                    deps.append(prev["update_of_layer"][layer_index])
                sim.add_task(
                    f"{prefix}move.l{layer_index}.t{op_id}",
                    h2d,
                    server.pcie.transfer_time(nbytes),
                    deps=deps,
                )
            for task in gathers.get(op_id, []):
                duration = self.collectives.all_gather(task.nbytes, num_ranks)
                gather_tasks[task.op_id] = sim.add_task(
                    f"{prefix}gather.l{task.layer_index}.op{task.op_id}",
                    nccl,
                    duration,
                    deps=trigger_dep,
                )
            layer_index = computes[op_id]
            layer = layer_by_index[layer_index]
            is_backward = op_id >= trace.num_layers
            duration = layer.fwd_time
            if is_backward:
                duration = layer.bwd_time + layer.recompute_time
            duration *= 1.0 + self.OP_OVERHEAD_FRACTION
            deps = []
            if op_id in gather_tasks:
                deps.append(gather_tasks[op_id])
            if not compute_tasks and prev is not None:
                # The next iteration's first computation follows the
                # previous iteration's last (one GPU stream).
                last_prev = max(prev["computes"])
                deps.append(prev["computes"][last_prev])
            compute_tasks[op_id] = sim.add_task(
                f"{prefix}{'bwd' if is_backward else 'fwd'}.l{layer_index}.op{op_id}",
                gpu,
                duration,
                deps=deps,
            )
            if is_backward and layer_index not in seen_bwd:
                seen_bwd.add(layer_index)
                reduce = sim.add_task(
                    f"{prefix}rs.l{layer_index}",
                    nccl,
                    self.collectives.reduce_scatter(layer.grad_bytes_fp16, num_ranks),
                    deps=[compute_tasks[op_id]],
                )
                if plan.cache.is_cached(layer_index):
                    offload_tasks[layer_index] = reduce
                else:
                    grad_shard = shard_bytes(layer.grad_bytes_fp16, num_ranks)
                    offload_tasks[layer_index] = sim.add_task(
                        f"{prefix}offload.l{layer_index}",
                        d2h,
                        server.pcie.transfer_time(grad_shard),
                        deps=[reduce],
                    )

        # Optimizer updates, in reverse layer order (Algorithm 2).
        ssd_link = server.ssd_io
        for layer in reversed(trace.layers):
            li = layer.layer_index
            grad_ready = offload_tasks[li]
            optim_shard = shard_bytes(layer.optim_bytes_fp32, num_ranks)
            params_shard = layer.param_count // num_ranks
            if plan.cache.is_cached(li):
                update = sim.add_task(
                    f"{prefix}upd.gpu.l{li}", gpu,
                    self.cost.update_time(params_shard, server.gpus[0]),
                    deps=[grad_ready],
                )
                update_tasks.append(update)
                update_of_layer[li] = update
                continue
            deps = [grad_ready]
            if use_ssd:
                if ssd_link is None:
                    raise SchedulingError("cluster has no SSD tier configured")
                read = sim.add_task(
                    f"{prefix}ssd.read.l{li}", ssd,
                    ssd_link.transfer_time(optim_shard),
                )
                deps.append(read)
            update = sim.add_task(
                f"{prefix}upd.cpu.l{li}", cpu,
                self.cost.cpu_update_time(params_shard),
                deps=deps,
            )
            update_tasks.append(update)
            update_of_layer[li] = update
            if use_ssd:
                write = sim.add_task(
                    f"{prefix}ssd.write.l{li}", ssd,
                    ssd_link.transfer_time(optim_shard),
                    deps=[update],
                )
                update_tasks.append(write)
                update_of_layer[li] = write

        return {
            "computes": compute_tasks,
            "offloads": offload_tasks,
            "updates": update_tasks,
            "update_of_layer": update_of_layer,
        }
