"""Schedule task structures: ``{operation, page, trigger_id}``.

Algorithm 1's output is "S: List of tasks, each is {operation, page,
trigger id}". The trigger id is a logical operation index: a task with
trigger ``t`` is released once the computation with logical ID ``t - 1``
has completed (``t = 0`` releases at iteration start).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import SchedulingError


class Operation(enum.Enum):
    """Operations the Unified Scheduler coordinates."""

    MOVE_TO_GPU = "move_to_gpu"    # Allocator: page CPU -> GPU over PCIe
    MOVE_TO_CPU = "move_to_cpu"    # Allocator: page GPU -> CPU over PCIe
    ALL_GATHER = "all_gather"      # Communicator: assemble sharded params
    REDUCE_SCATTER = "reduce_scatter"  # Communicator: shard gradients
    COMPUTE = "compute"            # Executor: layer forward/backward
    UPDATE_CPU = "update_cpu"      # Executor: optimizer step on CPU
    UPDATE_GPU = "update_gpu"      # Executor: optimizer step on GPU (cache hit)
    SSD_READ = "ssd_read"          # Allocator: optimizer states SSD -> CPU
    SSD_WRITE = "ssd_write"        # Allocator: optimizer states CPU -> SSD


#: Operations that move pages and can be popped back in Phase 1.
MOVEMENT_OPS = frozenset({Operation.MOVE_TO_GPU, Operation.MOVE_TO_CPU})


def index_by_trigger(
    tasks: Iterable["ScheduledTask"],
    exclude: frozenset = frozenset(),
) -> dict[int, list["ScheduledTask"]]:
    """Group tasks by their release trigger, preserving schedule order.

    The one trigger-indexed view of a schedule, shared by the runtime
    executor (release loop), the forensic recorder (failing-trigger
    context) and the static schedule verifier (symbolic replay).
    ``exclude`` drops operations the caller dispatches separately (the
    executor releases everything except COMPUTE by trigger).
    """
    grouped: dict[int, list[ScheduledTask]] = defaultdict(list)
    for task in tasks:
        if task.operation in exclude:
            continue
        grouped[task.trigger_id].append(task)
    return dict(grouped)


@dataclass(frozen=True)
class ScheduledTask:
    """One entry of the schedule.

    Attributes:
        operation: what to do.
        layer_index: the owning layer.
        page_id: logical page within the layer's shard (-1 for whole-layer
            tasks such as compute and all_gather groups).
        trigger_id: logical op index at which the task is released.
        nbytes: payload size for movement/communication tasks.
        op_id: for COMPUTE/UPDATE tasks, the logical op they execute.
    """

    operation: Operation
    layer_index: int
    trigger_id: int
    page_id: int = -1
    nbytes: int = 0
    op_id: int = -1

    def __post_init__(self) -> None:
        if self.trigger_id < 0:
            raise SchedulingError(f"negative trigger_id on {self.operation}")
        if self.nbytes < 0:
            raise SchedulingError(f"negative nbytes on {self.operation}")


@dataclass
class Schedule:
    """Ordered task list produced by the lifetime scheduler."""

    tasks: list[ScheduledTask] = field(default_factory=list)

    def append(self, task: ScheduledTask) -> None:
        self.tasks.append(task)

    def extend(self, tasks: list[ScheduledTask]) -> None:
        self.tasks.extend(tasks)

    def of(self, operation: Operation) -> list[ScheduledTask]:
        return [t for t in self.tasks if t.operation == operation]

    def by_trigger(
        self, exclude: frozenset = frozenset()
    ) -> dict[int, list[ScheduledTask]]:
        """Trigger -> released tasks (see :func:`index_by_trigger`).

        Built fresh on each call: Phase 1 edits the task list in place,
        so a cached index would go stale mid-scheduling.
        """
        return index_by_trigger(self.tasks, exclude=exclude)

    def at_trigger(self, trigger_id: int) -> list[ScheduledTask]:
        """Tasks released at one logical op (the forensics' failure view)."""
        return self.by_trigger().get(trigger_id, [])

    def pop_last_movement(self) -> ScheduledTask:
        """Phase 1, lines 7-9: remove the most recent movement task."""
        for index in range(len(self.tasks) - 1, -1, -1):
            if self.tasks[index].operation in MOVEMENT_OPS:
                return self.tasks.pop(index)
        raise SchedulingError("no movement task left to pop")

    def has_movement(self) -> bool:
        return any(t.operation in MOVEMENT_OPS for t in self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)
