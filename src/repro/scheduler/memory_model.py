"""GPU-memory feasibility model used by Algorithm 1.

Both phases of the paper's scheduling algorithm query memory state:
``get_available_memory(S, traces)`` in Phase 1 and the OOM check when
advancing all-gathers in Phase 2. This module maintains a per-logical-op
array of live GPU bytes so those queries are O(span) instead of a full
schedule replay.

The base load (independent of scheduling decisions) comes from the trace:
activations and their recompute copies, transient full gradients at each
backward op, and optionally a constant GPU cache of optimizer states.
Scheduled contributions (resident shard pages, gathered parameter buffers)
are added and removed incrementally as the scheduler edits the plan.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError
from repro.models.transformer import TensorKind
from repro.tracer.tracer import IterationTrace


class MemoryModel:
    """Per-op live-byte ledger with feasibility queries."""

    def __init__(
        self,
        trace: IterationTrace,
        gpu_budget_bytes: int,
        num_ranks: int = 1,
        cache_bytes: int = 0,
        use_recompute: bool = True,
    ):
        if gpu_budget_bytes <= 0:
            raise SchedulingError("GPU budget must be positive")
        if num_ranks <= 0:
            raise SchedulingError("num_ranks must be positive")
        self.budget = gpu_budget_bytes
        self.num_ops = trace.num_ops
        self._live = np.zeros(self.num_ops, dtype=np.float64)
        self._base = np.zeros(self.num_ops, dtype=np.float64)
        self._build_base(trace, num_ranks, cache_bytes, use_recompute)
        self._live += self._base

    def _build_base(
        self, trace: IterationTrace, num_ranks: int, cache_bytes: int, use_recompute: bool
    ) -> None:
        pattern = trace.pattern
        for access in pattern.accesses:
            if access.kind != TensorKind.ACTIVATION:
                continue
            self._base[access.first_id:access.end_id + 1] += access.nbytes
        for layer in trace.layers:
            if use_recompute:
                # Recomputed activations are live again during backward.
                self._base[layer.bwd_id] += layer.act_bytes_fp16
            # Full gradients coexist with gathered params at backward; the
            # rank's reduced gradient shard then lingers one op until the
            # Allocator offloads it to CPU memory.
            self._base[layer.bwd_id] += layer.grad_bytes_fp16
            end = min(layer.bwd_id + 1, self.num_ops - 1)
            self._base[layer.bwd_id:end + 1] += layer.grad_bytes_fp16 / num_ranks
        if cache_bytes:
            self._base += cache_bytes

    # ------------------------------------------------------------------
    # Incremental edits
    # ------------------------------------------------------------------
    def _span(self, start_op: int, end_op: int) -> slice:
        if not 0 <= start_op <= end_op < self.num_ops:
            raise SchedulingError(
                f"span [{start_op}, {end_op}] outside {self.num_ops} ops"
            )
        return slice(start_op, end_op + 1)

    def add_resident(self, nbytes: int, start_op: int, end_op: int) -> None:
        self._live[self._span(start_op, end_op)] += nbytes

    def remove_resident(self, nbytes: int, start_op: int, end_op: int) -> None:
        span = self._span(start_op, end_op)
        self._live[span] -= nbytes
        if (self._live[span] < self._base[span] - 1e-6).any():
            raise SchedulingError("removed more resident bytes than were added")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_at(self, op_id: int) -> float:
        return float(self._live[op_id])

    def available_at(self, op_id: int) -> float:
        """Algorithm 1's ``get_available_memory`` at one logical op."""
        return self.budget - float(self._live[op_id])

    def min_available(self, start_op: int, end_op: int) -> float:
        return self.budget - float(self._live[self._span(start_op, end_op)].max())

    def peak_live(self) -> float:
        return float(self._live.max())

    def fits(self) -> bool:
        return self.peak_live() <= self.budget

    def earliest_feasible(self, nbytes: int, latest: int, end_op: int) -> int | None:
        """Phase 2 query: smallest trigger ``t <= latest`` such that adding
        ``nbytes`` over ``[t, end_op]`` stays within budget, or ``None``
        when not even ``latest`` is feasible.
        """
        if latest > end_op:
            raise SchedulingError("latest trigger after the task's deadline")
        running_max = float(self._live[self._span(latest, end_op)].max())
        if running_max + nbytes > self.budget:
            return None
        best = latest
        for t in range(latest - 1, -1, -1):
            running_max = max(running_max, float(self._live[t]))
            if running_max + nbytes > self.budget:
                break
            best = t
        return best
