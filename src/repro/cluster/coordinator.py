"""The rendezvous coordinator: membership, barriers, failure detection.

One process (or thread, in tests) owns the cluster's membership truth:

- **Rendezvous.** Workers ``join`` and block until a generation forms.
  A generation forms the moment ``world_size`` workers are pending, or
  once no new joiner has arrived for ``rendezvous_grace`` seconds and at
  least ``min_world`` are pending. Ranks are assigned by ascending slot.
- **Barriers.** Named, generation-scoped. A barrier that completes
  before a fence replies ``ok`` to every member (the collective's data
  is fully published, so it may finish); a fence while any member is
  still missing fails *all* waiters with a fenced reply.
- **Failure detection.** Each worker heartbeats on a dedicated
  connection. The monitor thread walks the membership every half
  interval: a heartbeat older than ``suspect_after`` marks the worker
  suspect, older than ``evict_after`` evicts it. A control-connection
  EOF (SIGKILL closes the socket immediately) evicts without waiting
  for the deadline. Eviction fences the generation — survivors' next
  barrier fails, they re-join, and the next generation forms.

Every membership *decision* is made by the pure transition-rule table
in :mod:`repro.cluster.rules` — the same table the protocol model
checker (:mod:`repro.analysis.protocol`) exhaustively explores. This
class owns only what the rules cannot: threads, sockets, the wall
clock, and the ``membership_events.jsonl`` audit log the CI chaos job
uploads. Each event is persisted as one ``write`` of a full line plus
a flush, so a supervisor crash can never interleave torn event lines.

Thread model: one listener accept loop, one handler thread per
connection, one monitor thread. A single condition guards all mutable
state; every wait is bounded.
"""

from __future__ import annotations

import json
import os
import threading
import time
from multiprocessing.connection import Listener

from repro.cluster import rules as membership_rules
from repro.cluster.protocol import (
    EVENT_REPORT,
    EVENTS_FILENAME,
    OP_BARRIER,
    OP_DONE,
    OP_HEARTBEAT,
    OP_JOIN,
    OP_LEAVE,
    OP_REPORT,
    OP_RETIRE,
    OP_SHUTDOWN,
    OP_STATS,
    ClusterConfig,
)
from repro.cluster.rules import MembershipState

_CLOSE = object()


class Coordinator:
    """Generation-numbered membership service for trainer workers."""

    def __init__(self, config: ClusterConfig, workdir: str, clock=None,
                 rules: dict | None = None):
        self.config = config
        self.workdir = workdir
        self.clock = clock if clock is not None else time.monotonic
        #: The shared transition table (injectable for protocol tests).
        self.rules = dict(membership_rules.RULES) if rules is None else rules
        os.makedirs(workdir, exist_ok=True)
        self.events_path = os.path.join(workdir, EVENTS_FILENAME)

        self._cond = threading.Condition()
        # All state below is guarded by _cond.
        self._state = MembershipState()
        self._closing = False
        self._reports: dict[str, dict] = {}
        self._events: list[dict] = []
        self._listener: Listener | None = None
        # Line-buffered append handle held for the coordinator's
        # lifetime: one write of a complete line + flush per event.
        self._events_file = open(self.events_path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(self, address, authkey: bytes) -> None:
        """Accept connections until :data:`OP_SHUTDOWN`; blocks."""
        listener = Listener(address, authkey=authkey)
        with self._cond:
            self._listener = listener
        monitor = threading.Thread(
            target=self._monitor, name="cluster-monitor", daemon=True
        )
        monitor.start()
        try:
            while True:
                try:
                    conn = listener.accept()
                except (OSError, EOFError):
                    break  # listener closed by shutdown
                threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                ).start()
        finally:
            with self._cond:
                self._closing = True
                self._cond.notify_all()
            try:
                listener.close()
            except OSError:
                pass
            monitor.join(timeout=2.0)
            with self._cond:
                try:
                    self._events_file.close()
                except OSError:
                    pass

    def _serve_connection(self, conn) -> None:
        try:
            hello = conn.recv()
        except (EOFError, OSError):
            conn.close()
            return
        worker = hello.get("worker", "?")
        kind = hello.get("kind", "control")
        try:
            conn.send({"ok": True})
            while True:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    break
                reply = self._dispatch(message)
                if reply is _CLOSE:
                    conn.send({"ok": True})
                    break
                conn.send(reply)
        except (EOFError, OSError, BrokenPipeError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass
            if kind == "control":
                self._on_disconnect(worker)

    def _dispatch(self, message: dict):
        op = message.get("op")
        worker = message.get("worker", "?")
        if op == OP_JOIN:
            return self._op_join(worker, message)
        if op == OP_BARRIER:
            return self._op_barrier(worker, message)
        if op == OP_HEARTBEAT:
            return self._op_heartbeat(worker, message)
        if op == OP_RETIRE:
            return self._op_retire(worker, message)
        if op == OP_REPORT:
            return self._op_report(worker, message)
        if op == OP_DONE:
            return self._op_done(worker)
        if op == OP_STATS:
            return self._op_stats()
        if op == OP_SHUTDOWN:
            self._op_shutdown()
            return {"ok": True}
        if op == OP_LEAVE:
            return _CLOSE
        return {"ok": False, "error": f"unknown op {op!r}"}

    # ------------------------------------------------------------------
    # Ops — thin adapters: take the lock, apply a rule, log its events.
    # ------------------------------------------------------------------
    def _op_join(self, worker: str, message: dict) -> dict:
        with self._cond:
            if self._closing or self._state.complete:
                return {"ok": False, "closing": True,
                        "complete": self._state.complete}
            self._apply(self.rules["join"](
                self._state, worker,
                int(message.get("slot", 0)),
                int(message.get("incarnation", 0)),
                self.clock(),
            ))

            def admitted():
                state = self._state
                return (
                    self._closing or state.complete
                    or (worker in state.members
                        and worker not in state.pending)
                )

            if not self._cond.wait_for(admitted, timeout=self.config.run_timeout):
                self._state.pending.pop(worker, None)
                return {"ok": False, "error": "rendezvous timed out"}
            state = self._state
            if self._closing or state.complete:
                return {"ok": False, "closing": True,
                        "complete": state.complete}
            member = state.members[worker]
            return {
                "ok": True,
                "generation": state.generation,
                "rank": member.rank,
                "world": len(state.members),
                "members": {w: m.rank for w, m in state.members.items()},
                "num_data_shards": self.config.num_data_shards,
            }

    def _op_barrier(self, worker: str, message: dict) -> dict:
        name = str(message.get("name"))
        generation = int(message.get("generation", -1))
        with self._cond:
            status, events = self.rules["barrier_arrive"](
                self._state, worker, name, generation
            )
            self._apply(events)
            if status == "stale":
                return self._fenced_reply("stale generation")
            if status == "fenced":
                return self._fenced_reply(self._state.fence_reason)
            if status == "released":
                self._cond.notify_all()
            else:
                self._cond.wait_for(
                    lambda: self.rules["barrier_status"](
                        self._state, name, generation
                    )[0] != "wait" or self._closing,
                    timeout=self.config.run_timeout,
                )
            # A barrier that released before the fence stays good: every
            # member already published its data for this collective.
            status, rejoin = self.rules["barrier_status"](
                self._state, name, generation
            )
            if status == "released":
                return {"ok": True, "rejoin": rejoin}
            return self._fenced_reply(
                self._state.fence_reason or "barrier timed out"
            )

    def _op_heartbeat(self, worker: str, message: dict) -> dict:
        generation = int(message.get("generation", -1))
        with self._cond:
            standing = self.rules["heartbeat"](
                self._state, worker, generation, self.clock(),
                step=message.get("step"),
            )
            return {"ok": True, **standing}

    def _op_retire(self, worker: str, message: dict) -> dict:
        generation = int(message.get("generation", -1))
        with self._cond:
            self._apply(self.rules["retire"](
                self._state, worker, generation, self.clock()
            ))
            self._cond.notify_all()
            return {"ok": True}

    def _op_report(self, worker: str, message: dict) -> dict:
        with self._cond:
            self._reports[worker] = message.get("payload", {})
            self._log(EVENT_REPORT, worker=worker)
            return {"ok": True}

    def _op_done(self, worker: str) -> dict:
        with self._cond:
            complete, events = self.rules["done"](self._state, worker)
            self._apply(events)
            if events:
                self._cond.notify_all()
            return {"ok": True, "complete": complete}

    def _op_stats(self) -> dict:
        with self._cond:
            now = self.clock()
            state = self._state
            members = {}
            for worker, member in state.members.items():
                age = max(0.0, now - member.last_beat)
                members[worker] = {
                    "rank": member.rank,
                    "slot": member.slot,
                    "incarnation": member.incarnation,
                    "step": member.step,
                    "age": age,
                    "missed": member.missed,
                    "suspect": member.suspect,
                    "done": member.done,
                }
            return {
                "ok": True,
                "generation": state.generation,
                "world": len(state.members),
                "fenced": state.fenced,
                "evictions": state.evictions,
                "complete": state.complete,
                "members": members,
                "pending": sorted(state.pending),
                "reports": dict(self._reports),
            }

    def _op_shutdown(self) -> None:
        with self._cond:
            self._closing = True
            listener = self._listener
            self._cond.notify_all()
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    def _on_disconnect(self, worker: str) -> None:
        """Control EOF: a SIGKILLed worker is evicted without a deadline."""
        with self._cond:
            if self._closing:
                self._state.pending.pop(worker, None)
                return
            events = self.rules["disconnect"](
                self._state, worker, self.clock()
            )
            self._apply(events)
            if events:
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Monitor thread: formation + heartbeat deadlines
    # ------------------------------------------------------------------
    def _monitor(self) -> None:
        with self._cond:
            while not self._closing:
                self._cond.wait(timeout=self.config.heartbeat_interval / 2)
                if self._closing:
                    return
                now = self.clock()
                self._check_formation(now)
                self._check_liveness(now)

    def _check_formation(self, now: float) -> None:
        """Form the next generation from pending joiners.

        Called with ``_cond`` held; re-acquires it (the condition wraps
        an RLock) so every write is lock-mediated in its own right.
        """
        with self._cond:
            if self.rules["formation_due"](self._state, now, self.config):
                self._apply(self.rules["form"](self._state, now))
                self._cond.notify_all()

    def _check_liveness(self, now: float) -> None:
        """Advance the missed counters and the suspect/evict ladder."""
        with self._cond:
            events = self.rules["liveness"](self._state, now, self.config)
            self._apply(events)
            if events:
                self._cond.notify_all()

    def _fenced_reply(self, reason: str | None) -> dict:
        return {
            "ok": False,
            "fenced": True,
            "generation": self._state.generation,
            "reason": reason,
        }

    # ------------------------------------------------------------------
    # Event log (called under _cond)
    # ------------------------------------------------------------------
    def _apply(self, events: list) -> None:
        """Persist the events a rule returned."""
        for event_type, fields in events:
            self._log(event_type, **fields)

    def _log(self, event_type: str, **fields) -> None:
        event = {
            "type": event_type,
            "time": time.time(),
            "generation": self._state.generation,
            **fields,
        }
        self._events.append(event)
        # Atomic at the line level: a single write of one full line,
        # flushed immediately, so torn lines cannot appear in the log
        # even if the coordinator process dies mid-run.
        try:
            self._events_file.write(json.dumps(event) + "\n")
            self._events_file.flush()
        except (OSError, ValueError):
            pass  # the log is an audit trail, never worth crashing for


def coordinator_main(config: ClusterConfig, address, authkey: bytes,
                     workdir: str) -> None:
    """Process entry point: serve until shut down (spawn-safe)."""
    Coordinator(config, workdir).serve(address, authkey)
