"""The rendezvous coordinator: membership, barriers, failure detection.

One process (or thread, in tests) owns the cluster's membership truth:

- **Rendezvous.** Workers ``join`` and block until a generation forms.
  A generation forms the moment ``world_size`` workers are pending, or
  once no new joiner has arrived for ``rendezvous_grace`` seconds and at
  least ``min_world`` are pending. Ranks are assigned by ascending slot.
- **Barriers.** Named, generation-scoped. A barrier that completes
  before a fence replies ``ok`` to every member (the collective's data
  is fully published, so it may finish); a fence while any member is
  still missing fails *all* waiters with a fenced reply.
- **Failure detection.** Each worker heartbeats on a dedicated
  connection. The monitor thread walks the membership every half
  interval: a heartbeat older than ``suspect_after`` marks the worker
  suspect, older than ``evict_after`` evicts it. A control-connection
  EOF (SIGKILL closes the socket immediately) evicts without waiting
  for the deadline. Eviction fences the generation — survivors' next
  barrier fails, they re-join, and the next generation forms.

Every membership transition is appended to ``membership_events.jsonl``
under the run directory — the audit log the CI chaos job uploads.

Thread model: one listener accept loop, one handler thread per
connection, one monitor thread. A single condition guards all mutable
state; every wait is bounded.
"""

from __future__ import annotations

import json
import os
import threading
import time
from multiprocessing.connection import Listener

from repro.cluster.protocol import (
    EVENT_COMPLETE,
    EVENT_EVICTED,
    EVENT_FENCED,
    EVENT_GENERATION,
    EVENT_JOIN,
    EVENT_REPORT,
    EVENT_RETIRED,
    EVENT_SUSPECT,
    EVENTS_FILENAME,
    OP_BARRIER,
    OP_DONE,
    OP_HEARTBEAT,
    OP_JOIN,
    OP_LEAVE,
    OP_REPORT,
    OP_RETIRE,
    OP_SHUTDOWN,
    OP_STATS,
    ClusterConfig,
)

_CLOSE = object()


class _Member:
    """One worker's standing in the current generation."""

    __slots__ = (
        "worker", "slot", "incarnation", "rank",
        "last_beat", "missed", "suspect", "step", "done",
    )

    def __init__(self, worker: str, slot: int, incarnation: int, rank: int,
                 now: float):
        self.worker = worker
        self.slot = slot
        self.incarnation = incarnation
        self.rank = rank
        self.last_beat = now
        self.missed = 0
        self.suspect = False
        self.step = 0
        self.done = False


class _Barrier:
    """One named barrier's arrivals within a generation."""

    __slots__ = ("arrived", "released", "rejoin")

    def __init__(self):
        self.arrived: set[str] = set()
        self.released = False
        #: Decided once, when the last member arrives, so every member
        #: gets the same answer: should the group checkpoint and re-form
        #: to admit pending joiners?
        self.rejoin = False


class Coordinator:
    """Generation-numbered membership service for trainer workers."""

    def __init__(self, config: ClusterConfig, workdir: str, clock=None):
        self.config = config
        self.workdir = workdir
        self.clock = clock if clock is not None else time.monotonic
        os.makedirs(workdir, exist_ok=True)
        self.events_path = os.path.join(workdir, EVENTS_FILENAME)

        self._cond = threading.Condition()
        # All state below is guarded by _cond.
        self._generation = 0
        self._fenced = False
        self._fence_reason: str | None = None
        self._members: dict[str, _Member] = {}
        self._pending: dict[str, dict] = {}
        self._last_join: float | None = None
        self._barriers: dict[str, _Barrier] = {}
        self._evictions = 0
        self._complete = False
        self._closing = False
        self._reports: dict[str, dict] = {}
        self._events: list[dict] = []
        self._listener: Listener | None = None

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(self, address, authkey: bytes) -> None:
        """Accept connections until :data:`OP_SHUTDOWN`; blocks."""
        listener = Listener(address, authkey=authkey)
        with self._cond:
            self._listener = listener
        monitor = threading.Thread(
            target=self._monitor, name="cluster-monitor", daemon=True
        )
        monitor.start()
        try:
            while True:
                try:
                    conn = listener.accept()
                except (OSError, EOFError):
                    break  # listener closed by shutdown
                threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                ).start()
        finally:
            with self._cond:
                self._closing = True
                self._cond.notify_all()
            try:
                listener.close()
            except OSError:
                pass
            monitor.join(timeout=2.0)

    def _serve_connection(self, conn) -> None:
        try:
            hello = conn.recv()
        except (EOFError, OSError):
            conn.close()
            return
        worker = hello.get("worker", "?")
        kind = hello.get("kind", "control")
        try:
            conn.send({"ok": True})
            while True:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    break
                reply = self._dispatch(message)
                if reply is _CLOSE:
                    conn.send({"ok": True})
                    break
                conn.send(reply)
        except (EOFError, OSError, BrokenPipeError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass
            if kind == "control":
                self._on_disconnect(worker)

    def _dispatch(self, message: dict):
        op = message.get("op")
        worker = message.get("worker", "?")
        if op == OP_JOIN:
            return self._op_join(worker, message)
        if op == OP_BARRIER:
            return self._op_barrier(worker, message)
        if op == OP_HEARTBEAT:
            return self._op_heartbeat(worker, message)
        if op == OP_RETIRE:
            return self._op_retire(worker, message)
        if op == OP_REPORT:
            return self._op_report(worker, message)
        if op == OP_DONE:
            return self._op_done(worker)
        if op == OP_STATS:
            return self._op_stats()
        if op == OP_SHUTDOWN:
            self._op_shutdown()
            return {"ok": True}
        if op == OP_LEAVE:
            return _CLOSE
        return {"ok": False, "error": f"unknown op {op!r}"}

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def _op_join(self, worker: str, message: dict) -> dict:
        with self._cond:
            if self._closing or self._complete:
                return {"ok": False, "closing": True, "complete": self._complete}
            self._pending[worker] = {
                "slot": int(message.get("slot", 0)),
                "incarnation": int(message.get("incarnation", 0)),
            }
            self._last_join = self.clock()
            self._log(EVENT_JOIN, worker=worker, **self._pending[worker])
            self._cond.notify_all()

            def admitted():
                member = self._members.get(worker)
                return (
                    self._closing or self._complete
                    or (member is not None and worker not in self._pending)
                )

            if not self._cond.wait_for(admitted, timeout=self.config.run_timeout):
                self._pending.pop(worker, None)
                return {"ok": False, "error": "rendezvous timed out"}
            if self._closing or self._complete:
                return {"ok": False, "closing": True, "complete": self._complete}
            member = self._members[worker]
            return {
                "ok": True,
                "generation": self._generation,
                "rank": member.rank,
                "world": len(self._members),
                "members": {w: m.rank for w, m in self._members.items()},
                "num_data_shards": self.config.num_data_shards,
            }

    def _op_barrier(self, worker: str, message: dict) -> dict:
        name = str(message.get("name"))
        generation = int(message.get("generation", -1))
        with self._cond:
            if generation != self._generation or worker not in self._members:
                return self._fenced_reply("stale generation")
            if self._fenced:
                return self._fenced_reply(self._fence_reason)
            barrier = self._barriers.setdefault(name, _Barrier())
            barrier.arrived.add(worker)
            if barrier.arrived >= set(self._members):
                barrier.released = True
                # One decision for the whole group, made at release time.
                barrier.rejoin = bool(self._pending)
                self._cond.notify_all()
            else:
                self._cond.wait_for(
                    lambda: barrier.released or self._fenced or self._closing
                    or generation != self._generation,
                    timeout=self.config.run_timeout,
                )
            # A barrier that released before the fence stays good: every
            # member already published its data for this collective.
            if barrier.released:
                return {"ok": True, "rejoin": barrier.rejoin}
            return self._fenced_reply(self._fence_reason or "barrier timed out")

    def _op_heartbeat(self, worker: str, message: dict) -> dict:
        generation = int(message.get("generation", -1))
        with self._cond:
            member = self._members.get(worker)
            if member is None or generation != self._generation:
                return {"ok": True, "member": False, "fenced": True}
            member.last_beat = self.clock()
            member.missed = 0
            member.suspect = False
            member.step = int(message.get("step", member.step))
            return {"ok": True, "member": True, "fenced": self._fenced}

    def _op_retire(self, worker: str, message: dict) -> dict:
        generation = int(message.get("generation", -1))
        with self._cond:
            if generation == self._generation and not self._fenced:
                self._fence(f"rescale requested by {worker}")
            self._log(EVENT_RETIRED, worker=worker)
            return {"ok": True}

    def _op_report(self, worker: str, message: dict) -> dict:
        with self._cond:
            self._reports[worker] = message.get("payload", {})
            self._log(EVENT_REPORT, worker=worker)
            return {"ok": True}

    def _op_done(self, worker: str) -> dict:
        with self._cond:
            member = self._members.get(worker)
            if member is not None:
                member.done = True
            if (
                not self._fenced
                and self._members
                and all(m.done for m in self._members.values())
                and not self._complete
            ):
                self._complete = True
                self._log(EVENT_COMPLETE, world=len(self._members))
                self._cond.notify_all()
            return {"ok": True, "complete": self._complete}

    def _op_stats(self) -> dict:
        with self._cond:
            now = self.clock()
            members = {}
            for worker, member in self._members.items():
                age = max(0.0, now - member.last_beat)
                members[worker] = {
                    "rank": member.rank,
                    "slot": member.slot,
                    "incarnation": member.incarnation,
                    "step": member.step,
                    "age": age,
                    "missed": member.missed,
                    "suspect": member.suspect,
                    "done": member.done,
                }
            return {
                "ok": True,
                "generation": self._generation,
                "world": len(self._members),
                "fenced": self._fenced,
                "evictions": self._evictions,
                "complete": self._complete,
                "members": members,
                "pending": sorted(self._pending),
                "reports": dict(self._reports),
            }

    def _op_shutdown(self) -> None:
        with self._cond:
            self._closing = True
            listener = self._listener
            self._cond.notify_all()
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    def _on_disconnect(self, worker: str) -> None:
        """Control EOF: a SIGKILLed worker is evicted without a deadline."""
        with self._cond:
            self._pending.pop(worker, None)
            member = self._members.get(worker)
            if (
                member is None or member.done
                or self._complete or self._closing or self._fenced
            ):
                return
            self._evict(worker, "control connection lost")

    # ------------------------------------------------------------------
    # Monitor thread: formation + heartbeat deadlines
    # ------------------------------------------------------------------
    def _monitor(self) -> None:
        with self._cond:
            while not self._closing:
                self._cond.wait(timeout=self.config.heartbeat_interval / 2)
                if self._closing:
                    return
                now = self.clock()
                self._check_formation(now)
                self._check_liveness(now)

    def _check_formation(self, now: float) -> None:
        """Form the next generation from pending joiners.

        Called with ``_cond`` held; re-acquires it (the condition wraps
        an RLock) so every write is lock-mediated in its own right.
        """
        with self._cond:
            if self._complete or not self._pending:
                return
            if self._generation > 0 and not self._fenced:
                return  # an unfenced generation is running; joiners wait
            quorum = len(self._pending) >= self.config.world_size
            grace_over = (
                self._last_join is not None
                and now - self._last_join >= self.config.rendezvous_grace
                and len(self._pending) >= self.config.min_world
            )
            if not (quorum or grace_over):
                return
            self._generation += 1
            self._fenced = False
            self._fence_reason = None
            self._barriers = {}
            self._members = {}
            ordered = sorted(
                self._pending.items(), key=lambda item: item[1]["slot"]
            )
            for rank, (worker, info) in enumerate(ordered):
                self._members[worker] = _Member(
                    worker, info["slot"], info["incarnation"], rank, now
                )
            self._pending = {}
            self._log(
                EVENT_GENERATION,
                world=len(self._members),
                members={w: m.rank for w, m in self._members.items()},
            )
            self._cond.notify_all()

    def _check_liveness(self, now: float) -> None:
        """Advance the missed counters and the suspect/evict ladder."""
        with self._cond:
            if self._generation == 0:
                return
            interval = self.config.heartbeat_interval
            for worker in list(self._members):
                member = self._members[worker]
                if member.done:
                    continue
                age = max(0.0, now - member.last_beat)
                member.missed = int(age / interval)
                if self._fenced or self._complete:
                    continue  # fenced generations are already torn down
                if age >= self.config.suspect_after and not member.suspect:
                    member.suspect = True
                    self._log(EVENT_SUSPECT, worker=worker, age=round(age, 4))
                if age >= self.config.evict_after:
                    self._evict(worker, f"heartbeat silent for {age:.3f}s")

    def _evict(self, worker: str, reason: str) -> None:
        """Remove a dead worker and fence its generation."""
        with self._cond:
            member = self._members.pop(worker, None)
            if member is None:
                return
            self._evictions += 1
            self._log(EVENT_EVICTED, worker=worker, reason=reason)
            if not self._fenced:
                self._fence(f"{worker} evicted ({reason})")
            self._cond.notify_all()

    def _fence(self, reason: str) -> None:
        """No collective of this generation may complete from here on."""
        with self._cond:
            self._fenced = True
            self._fence_reason = reason
            # Restart the rendezvous grace clock: survivors deserve the
            # full window to re-join before a smaller generation forms
            # around whoever was already pending.
            self._last_join = self.clock()
            self._log(EVENT_FENCED, reason=reason)
            self._cond.notify_all()

    def _fenced_reply(self, reason: str | None) -> dict:
        return {
            "ok": False,
            "fenced": True,
            "generation": self._generation,
            "reason": reason,
        }

    # ------------------------------------------------------------------
    # Event log (called under _cond)
    # ------------------------------------------------------------------
    def _log(self, event_type: str, **fields) -> None:
        event = {
            "type": event_type,
            "time": time.time(),
            "generation": self._generation,
            **fields,
        }
        self._events.append(event)
        with open(self.events_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(event) + "\n")


def coordinator_main(config: ClusterConfig, address, authkey: bytes,
                     workdir: str) -> None:
    """Process entry point: serve until shut down (spawn-safe)."""
    Coordinator(config, workdir).serve(address, authkey)
