"""Elastic ZeRO trainer workers: join, train, survive, re-join.

Each worker process runs the outer rendezvous loop: join the next
generation, build a :class:`SharedMemoryTransport`, and train until the
workload completes or the generation fences. The inner loop is the ZeRO
step over a tiny transformer LM:

1. compute gradients for the **data shards this rank owns** (shard ``s``
   belongs to rank ``s % world``; the shard count is fixed at the launch
   world size, so the global batch never changes when the world shrinks);
2. ``reduce_scatter`` the summed gradient — each rank keeps its slice of
   the rank-order sum, bit-identical to the sequential reference when
   ``world == num_data_shards``;
3. apply Adam to the FP32 master/moment shards this rank owns and
   refresh FP16 parameters via ``all_gather``;
4. ``all_gather`` the per-rank float64 loss sums for the global loss.

Every ``checkpoint_every`` steps (and before a graceful rescale) the
group all-gathers full master/m/v state and rank 0 persists it through
the crash-consistent :mod:`repro.checkpoint.snapshot` path. Recovery is
resume: a new generation loads the newest good snapshot, re-shards it
for the new world size (the elastic path — exact for elementwise Adam),
and replays the batch stream from the checkpointed step.

A configured kill (``kill_rank``/``kill_at_step``) SIGKILLs the worker
*between gradient computation and the reduce-scatter* — mid-step, with
the collective half-published — which is exactly the window the fencing
protocol must make safe.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from multiprocessing.connection import Client

import numpy as np

from repro.checkpoint.reshard import split_even
from repro.checkpoint.snapshot import (
    Snapshot,
    latest_good_snapshot,
    save_snapshot,
    snapshot_path,
)
from repro.cluster.protocol import (
    OP_BARRIER,
    OP_DONE,
    OP_HEARTBEAT,
    OP_HELLO,
    OP_JOIN,
    OP_LEAVE,
    OP_REPORT,
    OP_RETIRE,
    ClusterConfig,
    worker_id,
)
from repro.cluster.transport import SharedMemoryTransport
from repro.errors import GenerationFencedError, RendezvousError
from repro.nn import MixedPrecisionAdam
from repro.nn.functional import cross_entropy
from repro.telemetry.core import NULL_TELEMETRY


def session_token(workdir: str) -> str:
    """Short, run-stable tag scoping shared-memory segment names."""
    return "rp" + hashlib.sha1(workdir.encode("utf-8")).hexdigest()[:8]


# ----------------------------------------------------------------------
# Coordinator client (control plane)
# ----------------------------------------------------------------------
class CoordinatorClient:
    """The control connection: join, barriers, reports. Main thread only."""

    def __init__(self, address, authkey: bytes, worker: str):
        self.worker = worker
        self._conn = Client(address, authkey=authkey)
        self._conn.send({"op": OP_HELLO, "worker": worker, "kind": "control"})
        self._conn.recv()

    def call(self, op: str, **fields) -> dict:
        self._conn.send({"op": op, "worker": self.worker, **fields})
        return self._conn.recv()

    def join(self, slot: int, incarnation: int) -> dict:
        reply = self.call(OP_JOIN, slot=slot, incarnation=incarnation)
        if not reply.get("ok") and not (
            reply.get("closing") or reply.get("complete")
        ):
            raise RendezvousError(reply.get("error", "join rejected"))
        return reply

    def barrier(self, name: str, generation: int) -> dict:
        reply = self.call(OP_BARRIER, name=name, generation=generation)
        if not reply.get("ok"):
            raise GenerationFencedError(generation, reply.get("reason"))
        return reply

    def close(self) -> None:
        try:
            self.call(OP_LEAVE)
        except (EOFError, OSError):
            pass
        try:
            self._conn.close()
        except OSError:
            pass


class HeartbeatPump:
    """Dedicated heartbeat connection on its own thread.

    Separate from the control connection so a worker blocked in a long
    collective still proves liveness, and a SIGKILL drops both sockets
    at once (the coordinator's fastest death signal).
    """

    def __init__(self, address, authkey: bytes, worker: str, interval: float):
        self.worker = worker
        self.interval = interval
        self._conn = Client(address, authkey=authkey)
        self._conn.send({"op": OP_HELLO, "worker": worker, "kind": "heartbeat"})
        self._conn.recv()
        self._lock = threading.Lock()
        self._generation = 0
        self._step = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._pump, name=f"heartbeat-{worker}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def configure(self, generation: int, step: int) -> None:
        with self._lock:
            self._generation = generation
            self._step = step

    def advance(self, step: int) -> None:
        with self._lock:
            self._step = step

    def _pump(self) -> None:
        while not self._stop.wait(self.interval):
            with self._lock:
                generation, step = self._generation, self._step
            try:
                self._conn.send({
                    "op": OP_HEARTBEAT,
                    "worker": self.worker,
                    "generation": generation,
                    "step": step,
                })
                self._conn.recv()
            except (EOFError, OSError):
                return  # coordinator gone; the worker is exiting anyway

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
        try:
            self._conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# The ZeRO workload (shared with the sequential reference)
# ----------------------------------------------------------------------
def _workload(config: ClusterConfig):
    """The run's model/data recipe as the shared fleet ``JobWorkload``."""
    from repro.fleet.factory import JobWorkload

    return JobWorkload(
        vocab_size=config.vocab_size,
        layers=config.layers,
        seq_len=config.seq_len,
        batch_size=config.global_batch,
        lr=config.lr,
        seed=config.seed,
    )


def _build_model(config: ClusterConfig):
    from repro.fleet.factory import JobFactory

    model = JobFactory(_workload(config)).model()
    params = model.parameters()
    return model, params


def make_batches(config: ClusterConfig) -> list:
    """The run's deterministic batch stream; identical on every rank."""
    from repro.fleet.factory import JobFactory

    return JobFactory(_workload(config)).batches(config.steps)


def _flatten_params(params) -> np.ndarray:
    return np.concatenate(
        [p.data.reshape(-1).astype(np.float32) for p in params]
    )


def _assign_params(params, flat: np.ndarray) -> None:
    offset = 0
    for param in params:
        size = param.data.size
        param.data[...] = flat[offset:offset + size].reshape(param.data.shape)
        offset += size


def _shard_grads(model, params, batch, config: ClusterConfig, rank: int,
                 world: int) -> tuple[float, np.ndarray]:
    """Gradient sum and float64 loss sum over this rank's data shards."""
    total = sum(p.data.size for p in params)
    grad = np.zeros(total, dtype=np.float32)
    loss_sum = 0.0
    for shard in range(config.num_data_shards):
        if shard % world != rank:
            continue
        lo = shard * config.shard_batch
        hi = lo + config.shard_batch
        logits = model(batch.inputs[lo:hi], config.mixed_precision)
        loss = cross_entropy(logits, batch.targets[lo:hi])
        model.zero_grad()
        loss.backward()
        offset = 0
        for param in params:
            if param.grad is not None:
                grad[offset:offset + param.data.size] += param.grad.reshape(-1)
            offset += param.data.size
        loss_sum += loss.item()
    return loss_sum, grad


def run_cluster_reference(config: ClusterConfig) -> list[float]:
    """Fault-free sequential run of the exact worker math.

    One process, no transport: gradients of all data shards accumulate
    in shard order, which is the same order a ``world == num_data_shards``
    cluster reduces rank slots in — so the fault-free cluster run matches
    this bit for bit, and degraded runs within tolerance.
    """
    model, params = _build_model(config)
    master = _flatten_params(params)
    moment_m = np.zeros_like(master)
    moment_v = np.zeros_like(master)
    adam = MixedPrecisionAdam([], lr=config.lr)
    losses: list[float] = []
    for step, batch in enumerate(make_batches(config)):
        loss_sum, grad = _shard_grads(model, params, batch, config, 0, 1)
        grad /= config.num_data_shards
        adam.t = step + 1
        adam._apply(master, grad, moment_m, moment_v)
        _assign_params(params, master.astype(np.float16).astype(np.float32))
        losses.append(loss_sum / config.num_data_shards)
    return losses


# ----------------------------------------------------------------------
# The worker process
# ----------------------------------------------------------------------
def _maybe_kill(config: ClusterConfig, slot: int, incarnation: int,
                step: int, sink=None) -> None:
    """SIGKILL mid-step if this life is the configured victim."""
    if (
        config.kill_rank is not None
        and config.kill_at_step is not None
        and slot == config.kill_rank
        and incarnation == 0
        and step == config.kill_at_step
    ):
        if sink is not None:
            # Flush completed events, then leave the truncated tail a
            # real mid-write SIGKILL would — the collector must skip it.
            sink.tear()
        os.kill(os.getpid(), signal.SIGKILL)


def _save_group_checkpoint(workdir: str, transport, client, generation: int,
                           rank: int, world: int, true_size: int,
                           master: np.ndarray, moment_m: np.ndarray,
                           moment_v: np.ndarray, completed: int, adam_t: int,
                           losses: list[float]) -> None:
    """All-gather full state; rank 0 persists it; everyone waits."""
    arrays = {}
    for name, shard in (("master", master), ("m", moment_m), ("v", moment_v)):
        arrays[name] = np.concatenate(transport.all_gather(shard))[:true_size]
    if rank == 0:
        snapshot = Snapshot(arrays=arrays, metadata={
            "step": completed,
            "adam_t": adam_t,
            "losses": losses,
            "generation": generation,
            "world": world,
        })
        save_snapshot(snapshot, snapshot_path(workdir, completed))
    # Nobody proceeds (or retires) until the save is published.
    client.barrier(f"ckpt{completed}", generation)


def _run_generation(config: ClusterConfig, workdir: str,
                    client: CoordinatorClient, pump: HeartbeatPump,
                    transport, generation: int, rank: int, world: int,
                    slot: int, incarnation: int, sink=None) -> bool:
    """Train within one generation. True = workload complete."""
    telemetry = sink.telemetry if sink is not None else NULL_TELEMETRY
    steps_counter = telemetry.counter("worker.steps")
    step_gauge = telemetry.gauge("worker.step")
    model, params = _build_model(config)
    true_size = sum(p.data.size for p in params)
    batches = make_batches(config)

    resumed = latest_good_snapshot(workdir)
    if resumed is not None:
        snapshot, _ = resumed
        master = snapshot.arrays["master"].astype(np.float32)
        moment_m = snapshot.arrays["m"].astype(np.float32)
        moment_v = snapshot.arrays["v"].astype(np.float32)
        adam_t = int(snapshot.metadata["adam_t"])
        start = int(snapshot.metadata["step"])
        losses = [float(x) for x in snapshot.metadata["losses"]]
        _assign_params(params, master.astype(np.float16).astype(np.float32))
    else:
        master = _flatten_params(params)
        moment_m = np.zeros_like(master)
        moment_v = np.zeros_like(master)
        adam_t = 0
        start = 0
        losses = []

    # Elastic re-shard: slice the full state for *this* generation's world.
    master_shard = split_even(master, world)[rank]
    m_shard = split_even(moment_m, world)[rank]
    v_shard = split_even(moment_v, world)[rank]
    adam = MixedPrecisionAdam([], lr=config.lr)

    for step in range(start, config.steps):
        pump.advance(step)
        if config.step_delay:
            time.sleep(config.step_delay)
        with telemetry.span(f"step{step}", track="train", step=step,
                            generation=generation, rank=rank):
            with telemetry.span("grads", track="train"):
                loss_sum, grad = _shard_grads(
                    model, params, batches[step], config, rank, world
                )
            _maybe_kill(config, slot, incarnation, step, sink)
            with telemetry.span("reduce_scatter", track="train",
                                nbytes=grad.nbytes):
                grad_shard = transport.reduce_scatter(grad)
            telemetry.record_collective("reduce_scatter", grad.nbytes)
            grad_shard /= config.num_data_shards
            adam_t += 1
            adam.t = adam_t
            with telemetry.span("adam", track="train"):
                adam._apply(master_shard, grad_shard, m_shard, v_shard)
            param_shard = master_shard.astype(np.float16).astype(np.float32)
            with telemetry.span("all_gather", track="train",
                                nbytes=param_shard.nbytes):
                flat = np.concatenate(
                    transport.all_gather(param_shard)
                )[:true_size]
            telemetry.record_collective("all_gather", param_shard.nbytes)
            _assign_params(params, flat)
            sums = transport.all_gather(np.array([loss_sum], dtype=np.float64))
            step_loss = 0.0
            for partial in sums:  # ascending rank order == shard order
                step_loss += float(partial[0])
            losses.append(step_loss / config.num_data_shards)

        completed = step + 1
        steps_counter.inc()
        step_gauge.set(completed)
        reply = client.barrier(f"step{step}", generation)
        rejoin = bool(reply.get("rejoin")) and completed < config.steps
        if completed % config.checkpoint_every == 0 or rejoin:
            with telemetry.span("checkpoint", track="train", step=completed):
                _save_group_checkpoint(
                    workdir, transport, client, generation, rank, world,
                    true_size, master_shard, m_shard, v_shard,
                    completed, adam_t, losses,
                )
        if sink is not None:
            sink.step(completed)
        if rejoin:
            # A joiner is waiting: checkpointed above, now re-form.
            client.call(OP_RETIRE, generation=generation)
            return False

    client.call(OP_REPORT, payload={
        "losses": losses,
        "rank": rank,
        "world": world,
        "generation": generation,
    })
    client.call(OP_DONE)
    return True


def run_worker(config: ClusterConfig, address, authkey: bytes, workdir: str,
               slot: int, incarnation: int) -> int:
    """The worker's outer rendezvous loop; returns the exit code."""
    me = worker_id(slot, incarnation)
    try:
        client = CoordinatorClient(address, authkey, me)
        pump = HeartbeatPump(address, authkey, me, config.heartbeat_interval)
    except (ConnectionError, FileNotFoundError, EOFError, OSError):
        return 3  # coordinator already gone (e.g. respawned post-completion)
    pump.start()
    session = session_token(workdir)
    # One event file per *life*: a killed w1i0 and its respawn w1i1 get
    # separate lanes in the collected trace.
    sink = config.sink.open(me, role="rank") if config.sink else None
    try:
        while True:
            reply = client.join(slot, incarnation)
            if not reply.get("ok"):
                # The run finished (or is shutting down) without us.
                return 0
            generation = int(reply["generation"])
            rank = int(reply["rank"])
            world = int(reply["world"])
            if sink is not None:
                # The clock-alignment anchor: the coordinator logged this
                # same generation forming in wall time.
                sink.anchor(f"generation:{generation}", rank=rank,
                            world=world)
            pump.configure(generation, 0)
            transport = SharedMemoryTransport(
                rank, world, generation, session,
                barrier=lambda name, g=generation: client.barrier(name, g),
                page_bytes=config.page_bytes,
            )
            try:
                if _run_generation(
                    config, workdir, client, pump, transport,
                    generation, rank, world, slot, incarnation, sink,
                ):
                    return 0
            except GenerationFencedError:
                # Survivor of a fenced generation: back to rendezvous.
                # Brief pause lets the coordinator settle the eviction.
                time.sleep(config.heartbeat_interval)
                continue
            finally:
                transport.close()
    finally:
        if sink is not None:
            sink.close()
        pump.stop()
        client.close()


def worker_entry(config: ClusterConfig, address, authkey: bytes, workdir: str,
                 slot: int, incarnation: int) -> None:
    """Spawn-context process entry point."""
    raise SystemExit(
        run_worker(config, address, authkey, workdir, slot, incarnation)
    )
