"""The coordinator's membership protocol as a pure transition-rule table.

Every membership transition the threaded :class:`~repro.cluster.
coordinator.Coordinator` performs — join, generation formation, barrier
arrival, heartbeat, retire, done, eviction, fencing, disconnect,
liveness deadlines — lives here as a pure function over a
:class:`MembershipState`. The coordinator holds one ``MembershipState``
under its condition variable and *delegates* every mutation to this
table; the protocol model checker (:mod:`repro.analysis.protocol`)
drives the **same** table from its explorer. One implementation, two
harnesses: the rules cannot drift between the production coordinator
and the model that verifies it.

Purity contract: rules never touch clocks, threads, sockets or files.
Time enters only as an explicit ``now`` argument; every rule returns
the membership **events** it caused as ``(event_type, fields)`` pairs
so the caller decides how to persist them (the coordinator appends
them to ``membership_events.jsonl``; the explorer feeds them to its
invariant checks).

State-space note: barriers are keyed by ``(generation, name)`` and are
never garbage-collected. A barrier released before a fence must keep
answering ``ok`` to late waiters of its own generation ("released
before the fence stays good"); runs are short (tens of steps, a
handful of generations), so the dict stays tiny.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Event types appended to ``membership_events.jsonl``. The protocol
#: module re-exports these; they are defined here so the rule table has
#: no intra-cluster imports (the analysis layer loads it standalone).
EVENT_JOIN = "join"
EVENT_GENERATION = "generation_formed"
EVENT_SUSPECT = "suspect"
EVENT_EVICTED = "evicted"
EVENT_FENCED = "fenced"
EVENT_RETIRED = "retired"
EVENT_REPORT = "report"
EVENT_COMPLETE = "complete"


@dataclass
class MemberInfo:
    """One worker's standing in the current generation."""

    worker: str
    slot: int
    incarnation: int
    rank: int
    last_beat: float = 0.0
    missed: int = 0
    suspect: bool = False
    step: int = 0
    done: bool = False


@dataclass
class BarrierInfo:
    """One named barrier's arrivals within one generation."""

    arrived: set = field(default_factory=set)
    released: bool = False
    #: Decided once, when the last member arrives, so every member gets
    #: the same answer: should the group checkpoint and re-form to
    #: admit pending joiners?
    rejoin: bool = False


@dataclass
class MembershipState:
    """The coordinator's entire membership truth, as plain data."""

    generation: int = 0
    fenced: bool = False
    fence_reason: str | None = None
    members: dict = field(default_factory=dict)   # worker -> MemberInfo
    pending: dict = field(default_factory=dict)   # worker -> {slot, incarnation}
    barriers: dict = field(default_factory=dict)  # (gen, name) -> BarrierInfo
    last_join: float | None = None
    evictions: int = 0
    complete: bool = False

    def clone(self) -> "MembershipState":
        """Deep-enough copy for stateless exploration."""
        return MembershipState(
            generation=self.generation,
            fenced=self.fenced,
            fence_reason=self.fence_reason,
            members={w: replace(m) for w, m in self.members.items()},
            pending={w: dict(info) for w, info in self.pending.items()},
            barriers={
                key: BarrierInfo(set(b.arrived), b.released, b.rejoin)
                for key, b in self.barriers.items()
            },
            last_join=self.last_join,
            evictions=self.evictions,
            complete=self.complete,
        )

    def key(self) -> tuple:
        """Canonical hashable key for visited-state memoization.

        Excludes ``fence_reason`` (human text) and per-member
        ``last_beat``/``missed`` bookkeeping: under the model's
        abstract clock these never distinguish reachable futures.
        """
        return (
            self.generation,
            self.fenced,
            self.complete,
            self.evictions,
            self.last_join,
            tuple(sorted(
                (w, m.slot, m.incarnation, m.rank, m.done, m.suspect)
                for w, m in self.members.items()
            )),
            tuple(sorted(
                (w, info["slot"], info["incarnation"])
                for w, info in self.pending.items()
            )),
            tuple(sorted(
                (gen, name, tuple(sorted(b.arrived)), b.released, b.rejoin)
                for (gen, name), b in self.barriers.items()
            )),
        )


# ----------------------------------------------------------------------
# Transition rules. Each takes the state first, mutates it in place,
# and returns the list of membership events it caused.
# ----------------------------------------------------------------------

def join(state: MembershipState, worker: str, slot: int, incarnation: int,
         now: float) -> list:
    """A worker asks to be admitted into the next generation."""
    state.pending[worker] = {"slot": int(slot), "incarnation": int(incarnation)}
    state.last_join = now
    return [(EVENT_JOIN, {"worker": worker, "slot": int(slot),
                          "incarnation": int(incarnation)})]


def formation_due(state: MembershipState, now: float, config) -> str | None:
    """Why the next generation should form now — or ``None``.

    Returns ``"quorum"`` (``world_size`` pending) or ``"grace"`` (the
    rendezvous grace expired with at least ``min_world`` pending).
    Formation is only legal while no unfenced generation is running.
    """
    if state.complete or not state.pending:
        return None
    if state.generation > 0 and not state.fenced:
        return None  # an unfenced generation is running; joiners wait
    if len(state.pending) >= config.world_size:
        return "quorum"
    if (
        state.last_join is not None
        and now - state.last_join >= config.rendezvous_grace
        and len(state.pending) >= config.min_world
    ):
        return "grace"
    return None


def form(state: MembershipState, now: float) -> list:
    """Form the next generation from every pending joiner.

    Ranks are assigned by ascending slot; the fence (if any) lifts.
    """
    state.generation += 1
    state.fenced = False
    state.fence_reason = None
    state.members = {}
    ordered = sorted(state.pending.items(), key=lambda item: item[1]["slot"])
    for rank, (worker, info) in enumerate(ordered):
        state.members[worker] = MemberInfo(
            worker, info["slot"], info["incarnation"], rank, last_beat=now
        )
    state.pending = {}
    return [(EVENT_GENERATION, {
        "world": len(state.members),
        "members": {w: m.rank for w, m in state.members.items()},
    })]


def barrier_arrive(state: MembershipState, worker: str, name: str,
                   generation: int) -> tuple:
    """A member arrives at a named, generation-scoped barrier.

    Returns ``(status, events)`` where status is ``"stale"`` (wrong
    generation or not a member), ``"fenced"``, ``"released"`` (this
    arrival completed the barrier) or ``"wait"``.
    """
    if generation != state.generation or worker not in state.members:
        return "stale", []
    if state.fenced:
        return "fenced", []
    barrier = state.barriers.setdefault((generation, name), BarrierInfo())
    barrier.arrived.add(worker)
    if barrier.arrived >= set(state.members):
        barrier.released = True
        # One decision for the whole group, made at release time.
        barrier.rejoin = bool(state.pending)
        return "released", []
    return "wait", []


def barrier_status(state: MembershipState, name: str,
                   generation: int) -> tuple:
    """Poll a barrier a member is already waiting on.

    Returns ``(status, rejoin)``. A barrier that released before the
    fence stays good — every member already published its data for
    this collective — so ``released`` wins over ``fenced``.
    """
    barrier = state.barriers.get((generation, name))
    if barrier is not None and barrier.released:
        return "released", barrier.rejoin
    if state.fenced or generation != state.generation:
        return "fenced", False
    return "wait", False


def heartbeat(state: MembershipState, worker: str, generation: int,
              now: float, step: int | None = None) -> dict:
    """Refresh a member's liveness clock; reports membership standing."""
    member = state.members.get(worker)
    if member is None or generation != state.generation:
        return {"member": False, "fenced": True}
    member.last_beat = now
    member.missed = 0
    member.suspect = False
    if step is not None:
        member.step = int(step)
    return {"member": True, "fenced": state.fenced}


def retire(state: MembershipState, worker: str, generation: int,
           now: float) -> list:
    """A member requests a rescale: fence so the group can re-form."""
    events = []
    if generation == state.generation and not state.fenced:
        events.extend(fence(state, f"rescale requested by {worker}", now))
    events.append((EVENT_RETIRED, {"worker": worker}))
    return events


def done(state: MembershipState, worker: str) -> tuple:
    """A member finished training. Returns ``(complete, events)``."""
    member = state.members.get(worker)
    if member is not None:
        member.done = True
    if (
        not state.fenced
        and state.members
        and all(m.done for m in state.members.values())
        and not state.complete
    ):
        state.complete = True
        return True, [(EVENT_COMPLETE, {"world": len(state.members)})]
    return state.complete, []


def evict(state: MembershipState, worker: str, reason: str,
          now: float) -> list:
    """Remove a dead worker and fence its generation."""
    member = state.members.pop(worker, None)
    if member is None:
        return []
    state.evictions += 1
    events = [(EVENT_EVICTED, {"worker": worker, "reason": reason})]
    if not state.fenced:
        events.extend(fence(state, f"{worker} evicted ({reason})", now))
    return events


def fence(state: MembershipState, reason: str, now: float) -> list:
    """No collective of this generation may complete from here on.

    Restarts the rendezvous grace clock: survivors deserve the full
    window to re-join before a smaller generation forms around whoever
    was already pending.
    """
    state.fenced = True
    state.fence_reason = reason
    state.last_join = now
    return [(EVENT_FENCED, {"reason": reason})]


def disconnect(state: MembershipState, worker: str, now: float) -> list:
    """Control EOF: a SIGKILLed worker is evicted without a deadline."""
    state.pending.pop(worker, None)
    member = state.members.get(worker)
    if member is None or member.done or state.complete or state.fenced:
        return []
    return evict(state, worker, "control connection lost", now)


def liveness(state: MembershipState, now: float, config) -> list:
    """Advance the missed counters and the suspect/evict ladder."""
    if state.generation == 0:
        return []
    events = []
    interval = config.heartbeat_interval
    for worker in list(state.members):
        member = state.members[worker]
        if member.done:
            continue
        age = max(0.0, now - member.last_beat)
        member.missed = int(age / interval)
        if state.fenced or state.complete:
            continue  # fenced generations are already torn down
        if age >= config.suspect_after and not member.suspect:
            member.suspect = True
            events.append((EVENT_SUSPECT,
                           {"worker": worker, "age": round(age, 4)}))
        if age >= config.evict_after:
            events.extend(
                evict(state, worker, f"heartbeat silent for {age:.3f}s", now)
            )
    return events


def next_incarnation(incarnation: int) -> int:
    """The incarnation a respawned worker must present when rejoining."""
    return incarnation + 1


#: The shared transition table. ``Coordinator`` dispatches through this
#: dict and the protocol explorer drives the same entries; seeding a
#: mutation into a *copy* of this table is how the model-checker tests
#: prove each invariant has teeth.
RULES = {
    "join": join,
    "formation_due": formation_due,
    "form": form,
    "barrier_arrive": barrier_arrive,
    "barrier_status": barrier_status,
    "heartbeat": heartbeat,
    "retire": retire,
    "done": done,
    "evict": evict,
    "fence": fence,
    "disconnect": disconnect,
    "liveness": liveness,
    "next_incarnation": next_incarnation,
}
