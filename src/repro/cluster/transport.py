"""Page-granularity collectives over ``multiprocessing.shared_memory``.

Each collective call is one exchange round: every rank creates its own
shared-memory segment, writes its contribution page by page, meets the
group at a coordinator barrier ("everyone has published"), reads its
peers' segments in ascending rank order (so floating-point reductions
are bit-reproducible), meets a second barrier ("everyone has read"),
then unlinks its own segment. Segments therefore live for exactly one
collective; a clean run leaks nothing.

Fencing is how death propagates: the barrier callable raises
:class:`~repro.errors.GenerationFencedError` when the coordinator has
evicted a member, and the transport responds by best-effort unlinking
every segment of the aborted round (including the dead peer's, if it got
far enough to create one) before re-raising. Survivors then re-join the
next generation with a fresh transport.

Segment names are scoped by session token, generation, sequence number
and rank, so concurrent runs — and successive generations of one run —
can never collide.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.errors import ClusterError, GenerationFencedError
from repro.zero.collectives import Transport, copy_pages, shard_length


def scoped_segment_name(session: str, *parts) -> str:
    """Compose a collision-free shared-memory segment name.

    The naming discipline every shared-memory consumer in the repo
    follows: a per-run session token scopes concurrent runs apart, and
    the remaining parts (generation, sequence, rank — or tier, arena id)
    scope segments within the run. Also used by
    :class:`repro.memory.arena.ArenaPoolBackend` and the page copy
    service, so one ``ls /dev/shm`` groups a run's segments together.
    """
    return session + "".join(str(part) for part in parts)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a peer's segment.

    Segments live for exactly one collective and the creating rank
    unlinks after the drain barrier, so the (shared) resource tracker's
    entry is registered before it is unregistered and no cleanup is ever
    owed by an attacher.
    """
    return shared_memory.SharedMemory(name=name)


class SharedMemoryTransport(Transport):
    """One rank's collectives for one generation of a process cluster.

    ``barrier`` is a callable ``barrier(name) -> None`` that blocks until
    every member of the generation arrives, raising
    :class:`GenerationFencedError` if the generation is fenced first —
    in practice a thin wrapper over the coordinator's barrier RPC.
    """

    def __init__(self, rank: int, world: int, generation: int, session: str,
                 barrier, page_bytes: int, telemetry=None):
        super().__init__(rank, world, page_bytes, telemetry)
        self.generation = generation
        self.session = session
        self._barrier = barrier
        self._seq = 0

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    def _segment_name(self, seq: int, rank: int) -> str:
        return scoped_segment_name(
            self.session, "g", self.generation, "c", seq, "r", rank
        )

    # ------------------------------------------------------------------
    # The exchange round shared by both collectives
    # ------------------------------------------------------------------
    def _exchange(self, payload: np.ndarray, reader) -> tuple:
        """Publish ``payload``, run ``reader`` over all ranks' segments.

        ``reader(views)`` receives ``{rank: flat ndarray view}`` and
        returns ``(result, pages_read)``. Returns ``(result, pages)``.
        """
        seq = self._seq
        self._seq += 1
        own_name = self._segment_name(seq, self.rank)
        segment = shared_memory.SharedMemory(
            create=True, size=payload.nbytes, name=own_name
        )
        peers: list[shared_memory.SharedMemory] = []
        try:
            own_view = np.ndarray(
                payload.shape, dtype=payload.dtype, buffer=segment.buf
            )
            pages = copy_pages(own_view, payload, self.page_bytes)
            self._barrier(f"c{seq}-publish")
            views = {self.rank: own_view}
            for rank in range(self.world):
                if rank == self.rank:
                    continue
                peer = _attach(self._segment_name(seq, rank))
                peers.append(peer)
                views[rank] = np.ndarray(
                    payload.shape, dtype=payload.dtype, buffer=peer.buf
                )
            result, pages_read = reader(views)
            pages += pages_read
            self._barrier(f"c{seq}-drain")
            return result, pages
        except GenerationFencedError:
            self._abort_round(seq)
            raise
        finally:
            for peer in peers:
                try:
                    peer.close()
                except OSError:
                    pass
            try:
                segment.close()
                segment.unlink()
            except (OSError, FileNotFoundError):
                pass

    def _abort_round(self, seq: int) -> None:
        """Fenced mid-round: scrub every segment this round may have left.

        The dead rank can't unlink its own segment, and peers may never
        reach their normal cleanup — every survivor sweeps all names of
        the round; double-unlinks surface as FileNotFoundError and are
        ignored.
        """
        for rank in range(self.world):
            if rank == self.rank:
                continue  # own segment is unlinked by the finally block
            try:
                stale = _attach(self._segment_name(seq, rank))
            except FileNotFoundError:
                continue
            try:
                stale.close()
                stale.unlink()
            except (OSError, FileNotFoundError):
                pass

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def all_gather(self, shard: np.ndarray) -> list[np.ndarray]:
        if shard.ndim != 1:
            raise ClusterError("transports operate on flat vectors")

        def read_all(views: dict) -> tuple:
            gathered, pages = [], 0
            for rank in range(self.world):
                out = np.empty_like(views[rank])
                pages += copy_pages(out, views[rank], self.page_bytes)
                gathered.append(out)
            return gathered, pages

        gathered, pages = self._exchange(shard, read_all)
        self._account("all_gather", shard.nbytes * self.world, pages)
        return gathered

    def reduce_scatter(self, full: np.ndarray) -> np.ndarray:
        padded = self.pad_full(full)
        length = shard_length(full.size, self.world)
        lo, hi = self.rank * length, (self.rank + 1) * length

        def read_slices(views: dict) -> tuple:
            acc = np.zeros(length, dtype=padded.dtype)
            pages = 0
            for rank in range(self.world):  # ascending: deterministic sum
                staged = np.empty(length, dtype=padded.dtype)
                pages += copy_pages(staged, views[rank][lo:hi], self.page_bytes)
                acc += staged
            return acc, pages

        acc, pages = self._exchange(padded, read_slices)
        self._account("reduce_scatter", full.nbytes, pages)
        return acc
