"""Launch and babysit a real multi-process elastic cluster.

``run_cluster`` owns every OS resource of one run: it spawns the
coordinator process, spawns ``world_size`` worker processes (spawn
context — each a fresh interpreter, as on a real node), then polls the
coordinator's ``stats`` RPC to:

- mirror membership into telemetry (``cluster.heartbeat.*`` gauges feed
  the ``worker_liveness`` watchdog rule, ``cluster.membership.*`` the
  run report);
- respawn dead workers into the same **slot** with a bumped
  **incarnation**, up to ``max_respawns`` times — the replacement joins
  the coordinator's pending set and is admitted at the next rescale
  boundary;
- enforce ``run_timeout`` as a hard stop so a protocol bug can never
  hang a test or CI job.

The returned :class:`ClusterReport` bundles the converged losses, the
membership event log (the CI artifact), generation/eviction/respawn
counts and any watchdog alerts.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass, field, replace
from multiprocessing.connection import Client

from repro.cluster.coordinator import coordinator_main
from repro.cluster.protocol import (
    EVENTS_FILENAME,
    OP_HELLO,
    OP_SHUTDOWN,
    OP_STATS,
    ClusterConfig,
)
from repro.cluster.worker import session_token, worker_entry
from repro.errors import ClusterError, ConfigurationError
from repro.telemetry.export import SinkSpec, telemetry_dir


@dataclass
class ClusterReport:
    """What one elastic run did, and what it survived."""

    complete: bool = False
    losses: list[float] = field(default_factory=list)
    steps_completed: int = 0
    generations: int = 0
    evictions: int = 0
    respawns: int = 0
    final_world: int = 0
    events: list[dict] = field(default_factory=list)
    alerts: list = field(default_factory=list)
    workdir: str = ""
    #: Cluster-wide metrics rollup merged from every worker's event
    #: stream (counters summed, gauges max-merged) by the trace
    #: collector on exit.
    rollup: dict = field(default_factory=dict)
    #: Trace lanes contributed by rank streams — one per incarnation,
    #: so a kill-and-respawn run shows both ``w1i0`` and ``w1i1``.
    rank_lanes: list[str] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ConfigurationError("no steps completed")
        return self.losses[-1]

    def to_dict(self) -> dict:
        return {
            "complete": self.complete,
            "losses": self.losses,
            "steps_completed": self.steps_completed,
            "generations": self.generations,
            "evictions": self.evictions,
            "respawns": self.respawns,
            "final_world": self.final_world,
            "events": self.events,
            "alerts": [
                alert.to_dict() if hasattr(alert, "to_dict") else alert
                for alert in self.alerts
            ],
            "workdir": self.workdir,
            "rollup": self.rollup,
            "rank_lanes": self.rank_lanes,
        }


def _bounded_recv(conn, timeout: float):
    """``recv()`` with a ``poll`` guard so a dead coordinator cannot
    hang the supervisor (SA005 discipline)."""
    if not conn.poll(timeout):
        raise ClusterError(
            f"coordinator did not answer within {timeout:.1f}s"
        )
    return conn.recv()


def _connect(address, authkey: bytes, deadline: float):
    """Dial the coordinator until it answers or the deadline passes."""
    last_error = None
    while time.monotonic() < deadline:
        try:
            conn = Client(address, authkey=authkey)
            conn.send({"op": OP_HELLO, "worker": "supervisor",
                       "kind": "supervisor"})
            remaining = max(0.05, min(1.0, deadline - time.monotonic()))
            if not conn.poll(remaining):
                conn.close()
                raise ConnectionError("no hello ack before deadline")
            conn.recv()
            return conn
        except (ConnectionError, FileNotFoundError, OSError) as exc:
            last_error = exc
            time.sleep(0.02)
    raise ClusterError(f"coordinator never came up: {last_error}")


def _spawn_worker(ctx, config: ClusterConfig, address, authkey: bytes,
                  workdir: str, slot: int, incarnation: int):
    process = ctx.Process(
        target=worker_entry,
        args=(config, address, authkey, workdir, slot, incarnation),
        name=f"cluster-w{slot}i{incarnation}",
        daemon=True,
    )
    process.start()
    return process


def _read_events(workdir: str) -> list[dict]:
    path = os.path.join(workdir, EVENTS_FILENAME)
    events = []
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    except FileNotFoundError:
        pass
    return events


def run_cluster(config: ClusterConfig, workdir: str | None = None,
                telemetry=None, watchdog=None) -> ClusterReport:
    """Run one elastic training job with real worker processes.

    ``workdir``/``telemetry`` resolve explicit argument first, then the
    matching ``config`` field, then (for ``workdir``) a fresh temp dir —
    so a caller who packed everything into the config object gets the
    directory and sink they asked for.
    """
    if workdir is None:
        workdir = config.workdir
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-cluster-")
    if telemetry is None:
        telemetry = config.telemetry
    # The config crosses the process boundary by pickle; a live telemetry
    # object must not (it is supervisor state) — but the *sink spec* is a
    # picklable recipe, so every worker opens its own event file under
    # workdir/telemetry/ instead of running blind.
    sink_spec = config.sink or SinkSpec(telemetry_dir(workdir))
    spawn_config = replace(config, telemetry=None, sink=sink_spec)
    os.makedirs(workdir, exist_ok=True)
    # AF_UNIX socket paths are length-limited (~108 bytes); anchor the
    # rendezvous address in tmp, scoped by pid + workdir hash.
    address = os.path.join(
        tempfile.gettempdir(),
        f"{session_token(workdir)}-{os.getpid()}.sock",
    )
    authkey = os.urandom(16)
    ctx = multiprocessing.get_context("spawn")

    if telemetry is not None and watchdog is None:
        from repro.observe.watchdog import Watchdog

        watchdog = Watchdog(telemetry=telemetry)

    # The supervisor exports its own stream too: the mirrored
    # heartbeat/membership gauges plus any live watchdog alerts, on the
    # same file format the workers write.
    supervisor_sink = None
    if telemetry is not None and getattr(telemetry, "enabled", False):
        supervisor_sink = sink_spec.open(
            "supervisor", role="supervisor", telemetry=telemetry
        )

    coordinator = ctx.Process(
        target=coordinator_main,
        args=(spawn_config, address, authkey, workdir),
        name="cluster-coordinator",
        daemon=True,
    )
    coordinator.start()
    deadline = time.monotonic() + config.run_timeout
    supervisor_conn = _connect(address, authkey, deadline)

    workers: dict[int, object] = {}
    incarnations: dict[int, int] = {}
    report = ClusterReport(workdir=workdir)
    stats: dict = {}
    try:
        for slot in range(config.world_size):
            incarnations[slot] = 0
            workers[slot] = _spawn_worker(
                ctx, spawn_config, address, authkey, workdir, slot, 0
            )

        while time.monotonic() < deadline:
            supervisor_conn.send({"op": OP_STATS, "worker": "supervisor"})
            stats = _bounded_recv(
                supervisor_conn, max(1.0, config.run_timeout / 4)
            )
            _mirror(stats, telemetry)
            steps = [m["step"] for m in stats.get("members", {}).values()]
            if watchdog is not None:
                fired = watchdog.observe_step(step=max(steps, default=0))
                report.alerts.extend(fired)
                if supervisor_sink is not None:
                    for alert in fired:
                        supervisor_sink.record_alert(alert)
            if supervisor_sink is not None:
                supervisor_sink.step(max(steps, default=0))
            if stats.get("complete"):
                break
            _respawn_dead(
                ctx, spawn_config, address, authkey, workdir,
                workers, incarnations, report,
            )
            time.sleep(config.heartbeat_interval)
    finally:
        try:
            supervisor_conn.send({"op": OP_SHUTDOWN, "worker": "supervisor"})
            _bounded_recv(supervisor_conn, 5.0)
        except (EOFError, OSError, ClusterError):
            pass
        try:
            supervisor_conn.close()
        except OSError:
            pass
        _reap(coordinator, workers)

    report.complete = bool(stats.get("complete"))
    report.generations = int(stats.get("generation", 0))
    report.evictions = int(stats.get("evictions", 0))
    report.final_world = int(stats.get("world", 0))
    for payload in stats.get("reports", {}).values():
        losses = payload.get("losses")
        if losses:
            report.losses = [float(x) for x in losses]
            break
    report.steps_completed = len(report.losses)
    report.events = _read_events(workdir)
    if supervisor_sink is not None:
        supervisor_sink.close()
    _collect_telemetry(workdir, report, watchdog)
    return report


def _collect_telemetry(workdir: str, report: ClusterReport,
                       watchdog) -> None:
    """Merge every worker's event stream; re-run the rules cluster-wide.

    The live watchdog only ever saw the supervisor's own registry; the
    replay feeds the *merged* per-step stream (every rank's counters
    summed) through a fresh instance of the same rule set, so retry
    storms split across ranks and missed heartbeats fire on cluster
    totals. Replay alerts land in ``report.alerts`` alongside the live
    ones.
    """
    from repro.observe.watchdog import Watchdog
    from repro.telemetry.collect import TraceCollector, replay_watchdog

    collected = TraceCollector(workdir).collect()
    report.rollup = collected.rollup
    report.rank_lanes = collected.rank_lanes
    replay = Watchdog(
        config=watchdog.config if watchdog is not None else None
    )
    report.alerts.extend(replay_watchdog(collected.streams, replay))


def _mirror(stats: dict, telemetry) -> None:
    """Publish the coordinator's view into the supervisor's telemetry."""
    if telemetry is None or not telemetry.enabled:
        return
    for worker, info in stats.get("members", {}).items():
        telemetry.record_heartbeat(worker, info["age"], info["missed"])
    telemetry.record_membership(
        stats.get("generation", 0),
        stats.get("world", 0),
        stats.get("evictions", 0),
    )


def _respawn_dead(ctx, config: ClusterConfig, address, authkey: bytes,
                  workdir: str, workers: dict, incarnations: dict,
                  report: ClusterReport) -> None:
    for slot, process in list(workers.items()):
        if process.is_alive() or process.exitcode == 0:
            continue  # running, or exited cleanly (workload done for it)
        if incarnations[slot] >= config.max_respawns:
            continue
        time.sleep(config.respawn_delay)
        incarnations[slot] += 1
        report.respawns += 1
        workers[slot] = _spawn_worker(
            ctx, config, address, authkey, workdir,
            slot, incarnations[slot],
        )


def _reap(coordinator, workers: dict) -> None:
    """Best-effort teardown: join briefly, then terminate, then kill."""
    processes = [coordinator] + list(workers.values())
    for process in processes:
        process.join(timeout=2.0)
    for process in processes:
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
    for process in processes:
        if process.is_alive():
            process.kill()
            process.join(timeout=1.0)
