"""Elastic multi-process training: rendezvous, heartbeats, recovery.

The paper's reliability story (Section 3.1) made concrete with real OS
processes: a generation-numbered rendezvous :class:`Coordinator`, worker
processes exchanging page-granularity collectives over shared memory
(:class:`SharedMemoryTransport`), a heartbeat failure detector whose
evictions *fence* the running generation, and a supervisor
(:func:`run_cluster`) that respawns the dead into the next generation.
Recovery is resume: survivors re-shard the newest crash-consistent
checkpoint for the shrunken world and replay — exact for elementwise
Adam, so a killed-and-healed run converges with the fault-free
reference (:func:`run_cluster_reference`).
"""

from repro.cluster.coordinator import Coordinator, coordinator_main
from repro.cluster.protocol import ClusterConfig, worker_id
from repro.cluster.supervisor import ClusterReport, run_cluster
from repro.cluster.transport import SharedMemoryTransport
from repro.cluster.worker import (
    CoordinatorClient,
    HeartbeatPump,
    run_cluster_reference,
    run_worker,
    worker_entry,
)

__all__ = [
    "ClusterConfig",
    "ClusterReport",
    "Coordinator",
    "CoordinatorClient",
    "HeartbeatPump",
    "SharedMemoryTransport",
    "coordinator_main",
    "run_cluster",
    "run_cluster_reference",
    "run_worker",
    "worker_entry",
    "worker_id",
]
