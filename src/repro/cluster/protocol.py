"""The rendezvous wire protocol: configuration, ops, and event names.

Coordinator and workers speak pickled dict messages over
``multiprocessing.connection``. Every request carries ``op`` and
``worker``; replies are plain dicts. Three invariants keep the protocol
honest:

- **Generations are fenced, never patched.** Membership only changes by
  retiring the current generation (fencing it) and forming the next one;
  a fenced generation's barriers all fail, so no survivor can complete a
  collective with a stale view of the world.
- **Identity is (slot, incarnation).** The supervisor owns ``slot``
  (stable across respawns); each respawn bumps ``incarnation``, so a
  zombie from a previous life can never be mistaken for its replacement.
- **Data sharding is fixed at launch.** ``num_data_shards`` equals the
  initial world size forever; shard ``s`` belongs to rank ``s % world``
  of whatever generation is running, which keeps the gradient math
  reproducible across shrink/regrow cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols import TelemetryLike
from repro.telemetry.export import SinkSpec
from repro.units import KiB


@dataclass(frozen=True)
class ClusterConfig:
    """One elastic-cluster scenario: workload, membership and fault knobs."""

    # Workload (mirrors resilience.chaos.ChaosConfig's tiny LM).
    world_size: int = 3
    steps: int = 12
    checkpoint_every: int = 3
    seed: int = 0
    layers: int = 2
    lr: float = 2e-3
    vocab_size: int = 32
    seq_len: int = 16
    #: Rows per data shard; the global batch is num_data_shards * this.
    shard_batch: int = 2
    page_bytes: int = 16 * KiB
    mixed_precision: bool = True
    #: Artificial per-step duration (simulated compute). Gives slow
    #: joiners a window to be admitted mid-run in tests and demos.
    step_delay: float = 0.0

    # Membership / failure detection.
    heartbeat_interval: float = 0.05
    #: Heartbeat age that marks a worker suspect.
    suspect_after: float = 0.25
    #: Heartbeat age that evicts a worker and fences its generation.
    evict_after: float = 0.75
    #: How long rendezvous waits for stragglers before forming a smaller
    #: generation (it forms immediately once world_size workers pend).
    rendezvous_grace: float = 1.0
    min_world: int = 1

    # Fault injection + supervision.
    kill_rank: int | None = None
    kill_at_step: int | None = None
    max_respawns: int = 2
    respawn_delay: float = 0.05
    run_timeout: float = 120.0

    # Supervisor-side resources. Both live only in the supervisor
    # process: ``workdir`` is where checkpoints and the membership event
    # log land (a fresh temp dir when omitted), and ``telemetry`` is the
    # sink that membership/heartbeat gauges mirror into. The config is
    # pickled to spawned coordinator/worker processes, so the supervisor
    # strips ``telemetry`` (not picklable, and meaningless off-process)
    # before any spawn.
    workdir: str | None = None
    telemetry: TelemetryLike | None = None
    #: Unlike ``telemetry``, this *does* cross the spawn boundary: a
    #: picklable recipe (directory + flush interval) each worker opens
    #: its own per-incarnation event file from, so worker-side spans and
    #: metrics are exported instead of silently dropped. ``run_cluster``
    #: fills it from ``workdir`` when unset.
    sink: SinkSpec | None = None

    @property
    def num_data_shards(self) -> int:
        """Fixed at the launch world size; never tracks the live world."""
        return self.world_size

    @property
    def global_batch(self) -> int:
        return self.num_data_shards * self.shard_batch


def worker_id(slot: int, incarnation: int) -> str:
    """Stable-slot, per-life worker identity, e.g. ``w1i0`` -> ``w1i1``."""
    return f"w{slot}i{incarnation}"


# Request ops (worker -> coordinator).
OP_HELLO = "hello"          # open a control or heartbeat connection
OP_JOIN = "join"            # block until the next generation forms
OP_BARRIER = "barrier"      # generation-scoped named barrier
OP_HEARTBEAT = "heartbeat"  # liveness beacon on the heartbeat connection
OP_RETIRE = "retire"        # graceful exit from a generation (rescale)
OP_REPORT = "report"        # final per-worker results
OP_DONE = "done"            # training finished on this worker
OP_LEAVE = "leave"          # close the control session
OP_STATS = "stats"          # supervisor: observability snapshot
OP_SHUTDOWN = "shutdown"    # supervisor: stop serving

# Membership event types (the JSONL audit log / CI artifact). Defined
# in the transition-rule table so the coordinator and the protocol
# model checker literally share them; re-exported here for the wire.
from repro.cluster.rules import (  # noqa: E402
    EVENT_COMPLETE,
    EVENT_EVICTED,
    EVENT_FENCED,
    EVENT_GENERATION,
    EVENT_JOIN,
    EVENT_REPORT,
    EVENT_RETIRED,
    EVENT_SUSPECT,
)

__all__ = [
    "ClusterConfig", "worker_id", "EVENTS_FILENAME",
    "OP_HELLO", "OP_JOIN", "OP_BARRIER", "OP_HEARTBEAT", "OP_RETIRE",
    "OP_REPORT", "OP_DONE", "OP_LEAVE", "OP_STATS", "OP_SHUTDOWN",
    "EVENT_JOIN", "EVENT_GENERATION", "EVENT_SUSPECT", "EVENT_EVICTED",
    "EVENT_FENCED", "EVENT_RETIRED", "EVENT_REPORT", "EVENT_COMPLETE",
]

EVENTS_FILENAME = "membership_events.jsonl"
