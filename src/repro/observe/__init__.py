"""Health monitoring and forensics over the telemetry streams.

Three consumers of the recording layer (:mod:`repro.telemetry`):

- :mod:`repro.observe.watchdog` — streaming anomaly detectors evaluated
  at step boundaries, emitting :class:`~repro.observe.alerts.Alert`
  records onto the event bus;
- :mod:`repro.observe.forensics` — per-tier residency timelines and the
  forensic dump attached to every :class:`~repro.errors.OutOfMemoryError`;
- :mod:`repro.observe.report` — the ``repro report`` generator merging
  BENCH payloads, traces and alert logs into one run report, plus the
  BENCH-vs-BENCH regression comparison.
"""

from repro.observe.alerts import (
    Alert,
    Severity,
    alert_from_dict,
    degrade_recommendation,
)
from repro.observe.forensics import ForensicDump, ForensicRecorder, ResidencySample
from repro.observe.report import (
    compare,
    format_compare,
    render_html,
    render_markdown,
    write_report,
)
from repro.observe.watchdog import (
    CacheThrashRule,
    RetryStormRule,
    Rule,
    StalenessLagRule,
    StepSnapshot,
    TierBandwidthRule,
    Watchdog,
    WatchdogConfig,
    WaterlineRule,
    WorkerLivenessRule,
    default_rules,
)

__all__ = [
    "Alert",
    "Severity",
    "alert_from_dict",
    "degrade_recommendation",
    "ForensicDump",
    "ForensicRecorder",
    "ResidencySample",
    "compare",
    "format_compare",
    "render_html",
    "render_markdown",
    "write_report",
    "CacheThrashRule",
    "RetryStormRule",
    "Rule",
    "StalenessLagRule",
    "StepSnapshot",
    "TierBandwidthRule",
    "Watchdog",
    "WatchdogConfig",
    "WaterlineRule",
    "WorkerLivenessRule",
    "default_rules",
]
