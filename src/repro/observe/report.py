"""The run-report layer: one readable verdict per profiling run.

``repro report build`` merges a ``BENCH_telemetry.json`` payload (and,
when present, the Chrome trace and the alert log embedded in it) into one
self-contained markdown — optionally HTML — document: a summary table, a
per-tier **memory waterfall**, the **tier-traffic table**, the static
**verification verdict** (from :mod:`repro.analysis`), the watchdog's
**anomaly section**, and the span breakdown. ``repro report compare``
diffs two BENCH payloads and flags metric regressions, which is how the
``BENCH_*.json`` history becomes a perf trajectory instead of a pile of
JSON.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path

from repro.units import GiB, KiB, MiB

#: Metrics compared by :func:`compare`: (json path, higher_is_better).
COMPARED_METRICS = [
    (("train", "steps_per_second"), True),
    (("train", "elapsed_seconds"), False),
    (("simulated", "samples_per_second"), True),
    (("simulated", "iteration_time_seconds"), False),
    (("overhead", "overhead_fraction"), False),
    (("fleet", "jobs_per_hour"), True),
    (("fleet", "p99_queue_latency_seconds"), False),
    (("fleet", "makespan_seconds"), False),
]

_BAR_WIDTH = 30


def load_payload(path) -> dict:
    return json.loads(Path(path).read_text())


def _get(payload: dict, path: tuple) -> float | None:
    node = payload
    for key in path:
        if not isinstance(node, dict) or key not in node or node[key] is None:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def _fmt_bytes(nbytes: float) -> str:
    if nbytes >= GiB:
        return f"{nbytes / GiB:.2f} GiB"
    if nbytes >= MiB:
        return f"{nbytes / MiB:.2f} MiB"
    if nbytes >= KiB:
        return f"{nbytes / KiB:.1f} KiB"
    return f"{nbytes:.0f} B"


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def _summary_section(bench: dict) -> list[str]:
    rows = []
    train = bench.get("train", {})
    sim = bench.get("simulated", {})
    overhead = bench.get("overhead") or {}
    if train:
        rows.append(("steps", f"{train.get('steps', '?')}"))
        if train.get("elapsed_seconds") is not None:
            rows.append(("elapsed", f"{train['elapsed_seconds']:.3f} s"))
        if train.get("steps_per_second") is not None:
            rows.append(("throughput", f"{train['steps_per_second']:.2f} steps/s"))
        if train.get("final_loss") is not None:
            rows.append(("final loss", f"{train['final_loss']:.4f}"))
    if sim:
        rows.append((
            "simulated",
            f"{sim.get('model', '?')} -> "
            f"{sim.get('samples_per_second', 0):.2f} samples/s",
        ))
    if overhead.get("overhead_fraction") is not None:
        rows.append(("telemetry overhead",
                     f"{overhead['overhead_fraction']:+.1%}"))
    lines = ["## Summary", "", "| metric | value |", "|---|---|"]
    lines += [f"| {name} | {value} |" for name, value in rows]
    return lines + [""]


def _waterfall_section(bench: dict) -> list[str]:
    """Per-tier residency bars over the sampled step timeline."""
    timeline = bench.get("memory_timeline") or []
    lines = ["## Memory waterfall", ""]
    if not timeline:
        return lines + ["_No residency timeline in this payload._", ""]
    tiers = sorted({tier for sample in timeline for tier in sample["tiers"]})
    # Downsample to at most 20 rows so long runs stay readable.
    stride = max(1, len(timeline) // 20)
    sampled = timeline[::stride]
    if sampled[-1] is not timeline[-1]:
        sampled.append(timeline[-1])
    for tier in tiers:
        stats = [s for s in sampled if tier in s["tiers"]]
        if not stats:
            continue
        capacity = max(
            s["tiers"][tier].get("used_bytes", 0)
            + s["tiers"][tier].get("free_bytes", 0)
            for s in stats
        )
        lines.append(f"### {tier} (capacity {_fmt_bytes(capacity)})")
        lines.append("")
        lines.append("```")
        for sample in stats:
            t = sample["tiers"][tier]
            used = t.get("used_bytes", 0)
            fraction = used / capacity if capacity else 0.0
            lines.append(
                f"step {sample['step']:>4}  {_bar(fraction)} "
                f"{fraction:>5.0%}  {_fmt_bytes(used)}"
            )
        lines.append("```")
        lines.append("")
    return lines


def _traffic_section(bench: dict) -> list[str]:
    """Bytes and page-move counts per (src, dst) tier edge."""
    edges = bench.get("per_tier_edge_bytes") or {}
    counters = (
        bench.get("telemetry", {}).get("metrics", {}).get("counters", {})
    )
    lines = ["## Tier traffic", ""]
    if not edges:
        return lines + ["_No page traffic recorded._", ""]
    lines += ["| edge | moved | page moves |", "|---|---|---|"]
    for key in sorted(edges):
        labels = key[key.index("{"):] if "{" in key else ""
        moves = counters.get(f"pages.moves{labels}", "?")
        lines.append(f"| `{key}` | {_fmt_bytes(edges[key])} | {moves} |")
    return lines + [""]


def _verification_section(bench: dict) -> list[str]:
    """Static schedule-verification verdict (see repro.analysis)."""
    verification = bench.get("verification")
    lines = ["## Verification", ""]
    if not verification:
        return lines + ["_No schedule verification in this payload._", ""]
    invariants = verification.get("invariants", [])
    violations = verification.get("violations", [])
    if verification.get("ok"):
        lines.append(
            f"schedule verified: {len(invariants)} invariants, 0 violations "
            f"(model `{verification.get('model', '?')}`)"
        )
        lines.append("")
    else:
        lines.append(
            f"**schedule INVALID**: {len(violations)} violation(s) on "
            f"model `{verification.get('model', '?')}`"
        )
        lines += ["", "| invariant | trigger | layer | page | message |",
                  "|---|---|---|---|---|"]
        for v in violations:
            lines.append(
                f"| `{v.get('invariant')}` | {v.get('trigger_id')} "
                f"| {v.get('layer_index')} | {v.get('page_id')} "
                f"| {v.get('message', '')} |"
            )
        lines.append("")
    checked = ", ".join(f"`{i.get('name')}`" for i in invariants)
    if checked:
        lines.append(f"Invariants checked: {checked}.")
        lines.append("")
    stats = verification.get("stats") or {}
    if stats.get("peak_live_bytes") is not None:
        budget = stats.get("gpu_budget_bytes") or 0
        peak = stats["peak_live_bytes"]
        headroom = (
            f" ({peak / budget:.1%} of the {_fmt_bytes(budget)} budget)"
            if budget else ""
        )
        lines.append(
            f"Replayed peak live bytes: {_fmt_bytes(peak)}{headroom}."
        )
        lines.append("")
    lines += _protocol_subsection(bench)
    return lines


def _protocol_subsection(bench: dict) -> list[str]:
    """Coordinator-protocol model-checking verdict, if the payload has one."""
    protocol = bench.get("protocol_verification")
    if not protocol:
        return []
    invariants = protocol.get("invariants", [])
    violations = protocol.get("violations", [])
    stats = protocol.get("stats") or {}
    lines: list[str] = []
    if protocol.get("ok"):
        lines.append(
            f"protocol verified: {len(invariants)} membership invariants, "
            f"0 violations over {stats.get('states', '?')} states / "
            f"{stats.get('transitions', '?')} transitions "
            f"(model `{protocol.get('model', '?')}`)"
        )
        lines.append("")
    else:
        lines.append(
            f"**protocol INVALID**: {len(violations)} violation(s) on "
            f"model `{protocol.get('model', '?')}`"
        )
        lines.append("")
        for v in violations:
            lines.append(
                f"- `{v.get('invariant')}`: {v.get('message', '')}"
            )
            trace = [event for _t, event in v.get("provenance", [])]
            if trace:
                lines.append(f"  counterexample: `{' -> '.join(trace)}`")
        lines.append("")
    return lines


def _fleet_section(bench: dict) -> list[str]:
    """Control-plane verdict for a ``fleet_bench`` payload."""
    fleet = bench.get("fleet")
    if not fleet:
        return []
    fairness = fleet.get("fairness") or {}
    rows = [
        ("jobs", f"{fleet.get('jobs_completed', 0)}"
                 f"/{fleet.get('jobs_submitted', 0)} completed"),
        ("throughput", f"{fleet.get('jobs_per_hour', 0.0):.1f} jobs/hour"),
        ("makespan", f"{fleet.get('makespan_seconds', 0.0):.1f} s (virtual)"),
        ("p99 queue latency",
         f"{fleet.get('p99_queue_latency_seconds', 0.0):.3f} s"),
        ("preemptions", f"{fleet.get('preemptions', 0)}"),
    ]
    if fairness.get("max_min_ratio") is not None:
        rows.append(
            ("fairness (max/min service)", f"{fairness['max_min_ratio']:.2f}")
        )
    lines = ["## Fleet", "", "| metric | value |", "|---|---|"]
    lines += [f"| {name} | {value} |" for name, value in rows]
    lines.append("")
    per_tenant = fairness.get("per_tenant_service_seconds") or {}
    if per_tenant:
        lines += ["### Per-tenant service", "",
                  "| tenant | service (virtual s) |", "|---|---|"]
        lines += [
            f"| `{tenant}` | {seconds:.1f} |"
            for tenant, seconds in sorted(per_tenant.items())
        ]
        lines.append("")
    preemptions = bench.get("preemption_events") or []
    if preemptions:
        lines += ["### Preemptions", "",
                  "| time | victim | tenant | prio | by | at step | node |",
                  "|---|---|---|---|---|---|---|"]
        for event in preemptions:
            lines.append(
                f"| {event.get('time', 0.0):.1f} | {event.get('victim', '?')} "
                f"| `{event.get('victim_tenant', '?')}` "
                f"| {event.get('victim_priority', '?')} "
                f"| job {event.get('by_job', '?')} (prio "
                f"{event.get('by_priority', '?')}) "
                f"| {event.get('at_step', '?')} | {event.get('node', '?')} |"
            )
        lines.append("")
    return lines


def _rank_timeline_section(bench: dict) -> list[str]:
    """Per-rank/job view of the merged telemetry rollup.

    Renders for any payload carrying a collected ``rollup`` (cluster run
    reports, fleet bench payloads): one row per event stream — every
    rank *incarnation* gets its own row, so a killed-and-respawned
    worker shows both lives — with how its clock was aligned and how
    many truncated lines the collector skipped.
    """
    rollup = bench.get("rollup") or {}
    per_source = rollup.get("per_source") or {}
    if not per_source:
        return []
    lines = ["## Per-rank timeline", "",
             "| stream | role | tenant | last step | clock | "
             "skipped lines |",
             "|---|---|---|---|---|---|"]
    for source, info in sorted(per_source.items()):
        lines.append(
            f"| `{source}` | {info.get('role', '?')} "
            f"| {info.get('tenant') or '-'} "
            f"| {info.get('last_step') if info.get('last_step') is not None else '-'} "
            f"| {info.get('alignment', '?')} "
            f"| {info.get('skipped_lines', 0)} |"
        )
    lines.append("")
    lanes = bench.get("rank_lanes") or []
    if lanes:
        listed = ", ".join(f"`{lane}`" for lane in lanes)
        lines.append(f"Rank lanes in the merged trace: {listed}.")
        lines.append("")
    return lines


def _tenant_traffic_section(bench: dict) -> list[str]:
    """Per-tenant page/IO traffic from the merged rollup."""
    traffic = (
        (bench.get("fleet") or {}).get("tenant_traffic")
        or (bench.get("rollup") or {}).get("tenant_traffic")
        or {}
    )
    if not traffic:
        return []
    lines = ["## Tenant traffic", "",
             "| tenant | job streams | pages moved | page moves | "
             "IO read | IO written |",
             "|---|---|---|---|---|---|"]
    for tenant, bucket in sorted(traffic.items()):
        lines.append(
            f"| `{tenant}` | {bucket.get('jobs', 0)} "
            f"| {_fmt_bytes(bucket.get('pages_moved_bytes', 0))} "
            f"| {bucket.get('page_moves', 0)} "
            f"| {_fmt_bytes(bucket.get('io_read_bytes', 0))} "
            f"| {_fmt_bytes(bucket.get('io_write_bytes', 0))} |"
        )
    return lines + [""]


def _anomaly_section(bench: dict) -> list[str]:
    alerts = bench.get("alerts") or []
    lines = ["## Anomalies", ""]
    if not alerts:
        return lines + ["No watchdog alerts fired.", ""]
    order = {"CRITICAL": 0, "WARNING": 1, "INFO": 2}
    ranked = sorted(
        alerts, key=lambda a: (order.get(a.get("severity"), 3), a.get("step", 0))
    )
    lines += ["| step | severity | rule | message |", "|---|---|---|---|"]
    for alert in ranked:
        lines.append(
            f"| {alert.get('step', '?')} | {alert.get('severity', '?')} "
            f"| `{alert.get('rule', '?')}` | {alert.get('message', '')} |"
        )
    lines.append("")
    for alert in ranked:
        evidence = alert.get("evidence") or {}
        if not evidence:
            continue
        detail = ", ".join(f"{k}={v}" for k, v in sorted(evidence.items()))
        lines.append(f"- `{alert.get('rule')}` @ step {alert.get('step')}: {detail}")
    return lines + [""]


def _pipeline_section(bench: dict) -> list[str]:
    compare = bench.get("pipeline_compare")
    if not compare:
        return []
    pipelined = compare.get("pipelined", {})
    sync = compare.get("sync", {})
    prefetch = pipelined.get("prefetch") or {}
    writeback = pipelined.get("writeback") or {}
    lines = [
        "## Pipeline overlap",
        "",
        f"SSD-tier workload ({compare.get('steps', '?')} steps, "
        f"{compare.get('ssd_latency_seconds', 0) * 1e3:.2f} ms emulated "
        f"per-I/O latency), synchronous vs schedule-driven pipeline:",
        "",
        "| runtime | elapsed | throughput |",
        "|---|---|---|",
        f"| synchronous | {sync.get('elapsed_seconds', 0.0):.3f} s "
        f"| {sync.get('steps_per_second', 0.0):.2f} steps/s |",
        f"| pipelined | {pipelined.get('elapsed_seconds', 0.0):.3f} s "
        f"| {pipelined.get('steps_per_second', 0.0):.2f} steps/s |",
        "",
        f"**Speedup: {compare.get('speedup', 0.0):.2f}x**, numerics "
        f"bit-identical: {compare.get('bit_identical_losses')}.",
        "",
        f"- awaited prefetch for "
        f"{pipelined.get('stall_seconds', 0.0) * 1e3:.1f} ms; demand "
        f"fetches took {pipelined.get('demand_fetch_seconds', 0.0) * 1e3:.1f} ms",
        f"- {prefetch.get('prefetched_groups', 0)} move groups staged in "
        f"the background ({prefetch.get('prefetched_bytes', 0) / MiB:.1f} MiB), "
        f"{prefetch.get('abandoned', 0)} abandoned to the demand path",
        f"- {pipelined.get('cached_layers_live', 0)} layers' FP32 states "
        f"GPU-cache-resident; {writeback.get('flushed', 0)} state flushes "
        f"ran asynchronously",
        "",
    ]
    return lines


def _span_section(bench: dict, top: int = 10) -> list[str]:
    spans = bench.get("telemetry", {}).get("spans", {})
    lines = ["## Span breakdown", ""]
    if not spans:
        return lines + ["_No spans recorded._", ""]
    ranked = sorted(
        spans.items(), key=lambda item: -item[1].get("total_seconds", 0.0)
    )[:top]
    lines += ["| span | count | total | max |", "|---|---|---|---|"]
    for name, stats in ranked:
        lines.append(
            f"| `{name}` | {stats.get('count', 0):.0f} "
            f"| {stats.get('total_seconds', 0.0):.4f} s "
            f"| {stats.get('max_seconds', 0.0):.4f} s |"
        )
    return lines + [""]


def _trace_section(trace: dict | None) -> list[str]:
    if not trace:
        return []
    events = trace.get("traceEvents", [])
    tracks = [
        e["args"]["name"] for e in events if e.get("ph") == "M"
    ]
    slices = sum(1 for e in events if e.get("ph") == "X")
    return [
        "## Trace",
        "",
        f"{slices} slices across {len(tracks)} tracks "
        f"({', '.join(f'`{t}`' for t in tracks)}); open the trace JSON in "
        "Perfetto / chrome://tracing for the timeline view.",
        "",
    ]


def render_markdown(
    bench: dict, trace: dict | None = None, title: str = "Run report"
) -> str:
    """Assemble the full markdown run report from one BENCH payload."""
    lines = [f"# {title}", ""]
    benchmark = bench.get("benchmark")
    if benchmark:
        lines.append(f"Benchmark: `{benchmark}`")
        lines.append("")
    if bench.get("fleet"):
        # Fleet payloads have no single-engine profile; render the
        # control-plane sections instead of engine placeholders.
        lines += _fleet_section(bench)
        lines += _tenant_traffic_section(bench)
        lines += _rank_timeline_section(bench)
        lines += _anomaly_section(bench)
        lines += _span_section(bench)
        lines += _trace_section(trace)
        return "\n".join(lines).rstrip() + "\n"
    lines += _summary_section(bench)
    lines += _waterfall_section(bench)
    lines += _traffic_section(bench)
    lines += _tenant_traffic_section(bench)
    lines += _rank_timeline_section(bench)
    lines += _pipeline_section(bench)
    lines += _verification_section(bench)
    lines += _anomaly_section(bench)
    lines += _span_section(bench)
    lines += _trace_section(trace)
    return "\n".join(lines).rstrip() + "\n"


# ----------------------------------------------------------------------
# Minimal markdown -> HTML (no external deps; tables/headers/code only)
# ----------------------------------------------------------------------
def render_html(markdown: str, title: str = "Run report") -> str:
    out = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{_html.escape(title)}</title>",
        "<style>body{font-family:sans-serif;max-width:60em;margin:2em auto}"
        "table{border-collapse:collapse}td,th{border:1px solid #999;"
        "padding:.25em .6em}pre{background:#f4f4f4;padding:.6em}</style>",
        "</head><body>",
    ]
    in_code = False
    in_table = False
    for line in markdown.splitlines():
        if line.startswith("```"):
            out.append("</pre>" if in_code else "<pre>")
            in_code = not in_code
            continue
        if in_code:
            out.append(_html.escape(line))
            continue
        is_table = line.startswith("|")
        if in_table and not is_table:
            out.append("</table>")
            in_table = False
        if is_table:
            cells = [c.strip() for c in line.strip("|").split("|")]
            if all(set(c) <= {"-", ":", " "} and c for c in cells):
                continue  # separator row
            if not in_table:
                out.append("<table>")
                in_table = True
                out.append(
                    "<tr>" + "".join(f"<th>{_html.escape(c)}</th>" for c in cells)
                    + "</tr>"
                )
            else:
                out.append(
                    "<tr>" + "".join(f"<td>{_html.escape(c)}</td>" for c in cells)
                    + "</tr>"
                )
            continue
        if line.startswith("#"):
            level = len(line) - len(line.lstrip("#"))
            text = _html.escape(line.lstrip("#").strip())
            out.append(f"<h{level}>{text}</h{level}>")
        elif line.startswith("- "):
            out.append(f"<p>&bull; {_html.escape(line[2:])}</p>")
        elif line.strip():
            out.append(f"<p>{_html.escape(line)}</p>")
    if in_table:
        out.append("</table>")
    if in_code:
        out.append("</pre>")
    out.append("</body></html>")
    return "\n".join(out)


def write_report(
    bench: dict,
    out_path,
    trace: dict | None = None,
    html: bool = False,
    title: str = "Run report",
) -> list[str]:
    """Write the markdown (and optionally HTML) report; returns paths."""
    out_path = Path(out_path)
    markdown = render_markdown(bench, trace=trace, title=title)
    out_path.write_text(markdown)
    written = [str(out_path)]
    if html:
        html_path = out_path.with_suffix(".html")
        html_path.write_text(render_html(markdown, title=title))
        written.append(str(html_path))
    return written


# ----------------------------------------------------------------------
# Regression comparison
# ----------------------------------------------------------------------
def compare(baseline: dict, current: dict, threshold: float = 0.05) -> dict:
    """Diff two BENCH payloads; flag changes beyond ``threshold``.

    Returns ``{regressions, improvements, unchanged, only_in_baseline,
    only_in_current, ok}`` where each of the first three entries is
    ``{metric, baseline, current, delta_fraction}`` and ``ok`` is True
    iff nothing regressed.

    Payloads from different benchmarks (e.g. ``BENCH_telemetry.json`` vs
    ``BENCH_fleet.json``) rarely carry the same sections. A metric that
    resolves on only one side is never an error: only metrics present in
    *both* payloads are scored, and one-sided metrics are listed in
    ``only_in_baseline``/``only_in_current`` so the asymmetry is visible
    in the verdict instead of raised at the caller.
    """
    regressions, improvements, unchanged = [], [], []
    only_in_baseline, only_in_current = [], []
    for path, higher_is_better in COMPARED_METRICS:
        base = _get(baseline, path)
        cur = _get(current, path)
        if base is None and cur is None:
            continue
        if cur is None:
            only_in_baseline.append(".".join(path))
            continue
        if base is None:
            only_in_current.append(".".join(path))
            continue
        if base == 0:
            delta = 0.0 if cur == 0 else float("inf")
        else:
            delta = (cur - base) / abs(base)
        entry = {
            "metric": ".".join(path),
            "baseline": base,
            "current": cur,
            "delta_fraction": delta,
        }
        improved = delta > 0 if higher_is_better else delta < 0
        if abs(delta) <= threshold:
            unchanged.append(entry)
        elif improved:
            improvements.append(entry)
        else:
            regressions.append(entry)
    return {
        "regressions": regressions,
        "improvements": improvements,
        "unchanged": unchanged,
        "only_in_baseline": only_in_baseline,
        "only_in_current": only_in_current,
        "ok": not regressions,
    }


def format_compare(result: dict) -> str:
    """Render a :func:`compare` result as markdown."""
    lines = ["# BENCH comparison", ""]
    verdict = "OK — no regressions" if result["ok"] else (
        f"REGRESSED — {len(result['regressions'])} metric(s) worse"
    )
    lines += [f"**{verdict}**", ""]
    for heading, key in (
        ("Regressions", "regressions"),
        ("Improvements", "improvements"),
        ("Unchanged", "unchanged"),
    ):
        entries = result[key]
        if not entries:
            continue
        lines += [f"## {heading}", "", "| metric | baseline | current | delta |",
                  "|---|---|---|---|"]
        for e in entries:
            lines.append(
                f"| `{e['metric']}` | {e['baseline']:.4g} | {e['current']:.4g} "
                f"| {e['delta_fraction']:+.1%} |"
            )
        lines.append("")
    asymmetries = [
        (side, result.get(key) or [])
        for side, key in (("baseline", "only_in_baseline"),
                          ("current", "only_in_current"))
    ]
    if any(metrics for _, metrics in asymmetries):
        lines += ["## Not comparable", ""]
        for side, metrics in asymmetries:
            if metrics:
                listed = ", ".join(f"`{m}`" for m in metrics)
                lines.append(f"- only in {side}: {listed}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
