"""Structured watchdog alerts.

The watchdog engine (:mod:`repro.observe.watchdog`) turns telemetry
streams into :class:`Alert` records — a severity, the rule that fired,
a human-readable message and a machine-readable evidence dict. Alerts
are plain data: they serialize into the ``BENCH_telemetry.json`` payload,
publish onto the :class:`~repro.runtime.events.EventBus`, and render in
the ``repro report`` anomaly section.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """How urgently a human should look at this."""

    INFO = 0
    WARNING = 1
    CRITICAL = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Alert:
    """One fired watchdog rule with its evidence."""

    rule: str
    severity: Severity
    message: str
    step: int
    evidence: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.name,
            "message": self.message,
            "step": self.step,
            "evidence": dict(self.evidence),
        }


def alert_from_dict(payload: dict) -> Alert:
    """Rebuild an :class:`Alert` from its ``to_dict`` form (report I/O)."""
    return Alert(
        rule=payload["rule"],
        severity=Severity[payload.get("severity", "WARNING")],
        message=payload.get("message", ""),
        step=int(payload.get("step", 0)),
        evidence=dict(payload.get("evidence", {})),
    )


def degrade_recommendation(alert: Alert) -> str | None:
    """Map an alert to a tier-degradation recommendation, if any.

    Closes the loop between the resilience and telemetry subsystems: a
    sustained retry storm or a saturated SSD edge suggests the SSD tier
    is unhealthy, and the supervisor *may* evacuate the FP32 states via
    ``AngelModel.degrade_tier`` — the recommendation never forces it.
    """
    if alert.severity < Severity.WARNING:
        return None
    if alert.rule == "retry_storm":
        return (
            "degrade_tier: sustained retry storm on tier I/O "
            f"({alert.evidence.get('retries_in_window', '?')} retries in "
            f"{alert.evidence.get('window_steps', '?')} steps) — consider "
            "AngelModel.degrade_tier(SSD, CPU)"
        )
    if alert.rule == "tier_bandwidth" and "ssd" in str(alert.evidence.get("edge", "")):
        return (
            f"degrade_tier: {alert.evidence.get('edge')} edge saturated at "
            f"{alert.evidence.get('bytes_per_step', 0)} B/step — consider "
            "AngelModel.degrade_tier(SSD, CPU)"
        )
    return None
