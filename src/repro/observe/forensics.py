"""Memory forensics: explain an OOM, don't just raise it.

A :class:`ForensicRecorder` rides along with a
:class:`~repro.memory.allocator.PageAllocator`: it samples per-tier
page-residency waterlines at step boundaries, and callers staging work
(the engine's eviction loop, the schedule executor) deposit *context* —
the failing trigger id, the unified scheduler's tasks released there, the
currently pinned tensors. When any tier pool raises
:class:`~repro.errors.OutOfMemoryError`, the recorder captures a
:class:`ForensicDump` — resident pages and tensors per tier, the pinned
set, the planned tasks, the recent waterline history — and attaches it to
the raised error as ``exc.forensics``, so the failure explains itself all
the way up the stack.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ResidencySample:
    """Per-tier waterline at one step boundary."""

    step: int
    tiers: dict

    def to_dict(self) -> dict:
        return {"step": self.step, "tiers": {k: dict(v) for k, v in self.tiers.items()}}


@dataclass
class ForensicDump:
    """Everything known about the memory system at the failure point."""

    device: str
    requested_bytes: int
    available_bytes: int
    #: Per tier: pages_in_use / num_pages / used_bytes / free_bytes.
    resident_pages: dict = field(default_factory=dict)
    #: Per tier: the largest resident tensors, ``{tensor_id, nbytes}``.
    resident_tensors: dict = field(default_factory=dict)
    #: Tensors the failing operation could not evict (names or ids).
    pinned: list = field(default_factory=list)
    #: The unified scheduler's logical op at which the failure happened.
    trigger_id: int | None = None
    #: The scheduler's tasks released at that trigger.
    planned_tasks: list = field(default_factory=list)
    #: Recent per-tier waterline samples, oldest first.
    waterline_history: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "requested_bytes": self.requested_bytes,
            "available_bytes": self.available_bytes,
            "resident_pages": {k: dict(v) for k, v in self.resident_pages.items()},
            "resident_tensors": {
                k: [dict(t) for t in v] for k, v in self.resident_tensors.items()
            },
            "pinned": list(self.pinned),
            "trigger_id": self.trigger_id,
            "planned_tasks": [dict(t) for t in self.planned_tasks],
            "waterline_history": list(self.waterline_history),
        }

    def summary(self) -> str:
        """A few human-readable lines for logs and error messages."""
        lines = [f"OOM on {self.device}: requested {self.requested_bytes} B, "
                 f"{self.available_bytes} B available"]
        for tier, stats in sorted(self.resident_pages.items()):
            lines.append(
                f"  {tier}: {stats.get('pages_in_use', 0)}/"
                f"{stats.get('num_pages', 0)} pages resident"
            )
        if self.pinned:
            lines.append(f"  pinned: {', '.join(str(p) for p in self.pinned)}")
        if self.trigger_id is not None:
            ops = ", ".join(
                f"{t.get('operation')}(l{t.get('layer_index')})"
                for t in self.planned_tasks[:6]
            ) or "none"
            lines.append(f"  trigger {self.trigger_id}: planned {ops}")
        return "\n".join(lines)


def _task_to_dict(task) -> dict:
    """Serialize a ScheduledTask (or a ready-made dict) for the dump."""
    if isinstance(task, dict):
        return dict(task)
    return {
        "operation": getattr(task.operation, "value", str(task.operation)),
        "layer_index": task.layer_index,
        "page_id": task.page_id,
        "trigger_id": task.trigger_id,
        "nbytes": task.nbytes,
        "op_id": task.op_id,
    }


class ForensicRecorder:
    """Waterline sampler + OOM dump capturer for one allocator."""

    def __init__(self, capacity: int = 512, top_tensors: int = 8):
        self._timeline: deque[ResidencySample] = deque(maxlen=capacity)
        self._context: dict = {}
        self.top_tensors = top_tensors
        #: The most recent dump captured (also attached to the error).
        self.last_dump: ForensicDump | None = None

    # ------------------------------------------------------------------
    # Waterline timeline
    # ------------------------------------------------------------------
    def sample(self, step: int, memory_report: dict) -> None:
        """Record one per-tier residency sample (a ``memory_report()``)."""
        self._timeline.append(ResidencySample(step=step, tiers=memory_report))

    @property
    def timeline(self) -> list[ResidencySample]:
        return list(self._timeline)

    def timeline_payload(self) -> list[dict]:
        return [sample.to_dict() for sample in self._timeline]

    # ------------------------------------------------------------------
    # Failure context (set by whoever is driving the allocator)
    # ------------------------------------------------------------------
    def set_context(self, *, trigger_id=None, planned_tasks=None, pinned=None) -> None:
        if trigger_id is not None:
            self._context["trigger_id"] = trigger_id
        if planned_tasks is not None:
            self._context["planned_tasks"] = [
                _task_to_dict(t) for t in planned_tasks
            ]
        if pinned is not None:
            self._context["pinned"] = list(pinned)

    def clear_context(self) -> None:
        self._context.clear()

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def capture(self, allocator, exc) -> ForensicDump:
        """Build the dump from the allocator's state at the failure point."""
        resident_pages: dict = {}
        resident_tensors: dict = {}
        for device, pool in allocator.pools.items():
            tier = device.name.lower()
            resident_pages[tier] = {
                "pages_in_use": pool.pages_in_use,
                "num_pages": pool.num_pages,
                "used_bytes": pool.used_bytes,
                "free_bytes": pool.free_bytes,
                "peak_pages": pool.peak_in_use,
            }
            resident_tensors[tier] = []
        for tensor in allocator.tensors:
            device = tensor.device_kind
            tier = device.name.lower() if device is not None else "split"
            resident_tensors.setdefault(tier, []).append(
                {"tensor_id": tensor.tensor_id, "nbytes": tensor.nbytes}
            )
        for tier, tensors in resident_tensors.items():
            tensors.sort(key=lambda t: (-t["nbytes"], t["tensor_id"]))
            del tensors[self.top_tensors:]
        dump = ForensicDump(
            device=getattr(exc, "device", "?"),
            requested_bytes=getattr(exc, "requested_bytes", 0),
            available_bytes=getattr(exc, "available_bytes", 0),
            resident_pages=resident_pages,
            resident_tensors=resident_tensors,
            pinned=list(self._context.get("pinned", [])),
            trigger_id=self._context.get("trigger_id"),
            planned_tasks=list(self._context.get("planned_tasks", [])),
            waterline_history=[s.to_dict() for s in list(self._timeline)[-16:]],
        )
        self.last_dump = dump
        return dump

    def attach(self, exc, allocator) -> None:
        """Attach a dump to ``exc`` (idempotent: first capture wins)."""
        if getattr(exc, "forensics", None) is not None:
            return
        exc.forensics = self.capture(allocator, exc)
