"""Streaming anomaly detectors over the telemetry registry.

Angel-PTM's scheduler is driven by observed runtime state — tensor
lifetimes, per-tier waterlines, SSD bandwidth, the lock-free updater's
sweep lag — and the :class:`Watchdog` watches exactly those signals.
Callers invoke :meth:`Watchdog.observe_step` at step boundaries; each
:class:`Rule` keeps its own sliding window over the registry's cumulative
counters and emits :class:`~repro.observe.alerts.Alert` records, which are
published onto the :class:`~repro.runtime.events.EventBus` and counted in
the registry itself (``watchdog.alerts{rule,severity}``).

Detectors shipped by :func:`default_rules`:

- ``staleness_lag`` — lock-free updater falling behind the GPU loop;
- ``cache_thrash`` — windowed GPU-cache hit-rate collapse;
- ``tier_bandwidth`` — per-(src, dst) edge traffic above budget;
- ``waterline`` — GPU/tier headroom below margin (OOM near-miss);
- ``retry_storm`` — transient-fault retries clustering in time;
- ``worker_liveness`` — a cluster worker missing heartbeats (fed by the
  ``cluster.heartbeat.*`` gauges the supervisor mirrors from the
  coordinator; inert when no cluster is running).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.observe.alerts import Alert, Severity
from repro.units import MiB


@dataclass(frozen=True)
class StepSnapshot:
    """Everything a rule may inspect at one step boundary."""

    step: int
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    #: Per-tier residency: ``{tier: {used_bytes, free_bytes, ...}}`` —
    #: the shape of ``AngelModel.memory_report()``.
    memory: dict = field(default_factory=dict)


@dataclass
class WatchdogConfig:
    """Thresholds for the default rule set."""

    #: The engine's configured staleness budget (iterations per sweep).
    update_interval: int = 1
    #: Fire when the updater lags more than ``tolerance * interval``.
    staleness_tolerance: float = 1.5
    cache_window: int = 8
    cache_warmup_steps: int = 3
    cache_hit_rate_floor: float = 0.5
    cache_hit_rate_critical: float = 0.2
    edge_budget_bytes_per_step: int = 32 * MiB
    bandwidth_window: int = 4
    waterline_margin: float = 0.10
    waterline_critical: float = 0.02
    waterline_history: int = 16
    retry_window: int = 8
    retry_storm_threshold: int = 6
    retry_storm_critical: int = 16
    #: Missed heartbeats before a cluster worker alerts (warn / critical).
    liveness_missed_warning: int = 1
    liveness_missed_critical: int = 2

    def __post_init__(self) -> None:
        if self.update_interval < 1:
            raise ConfigurationError("update_interval must be >= 1")
        if not 0 <= self.waterline_critical <= self.waterline_margin < 1:
            raise ConfigurationError(
                "need 0 <= waterline_critical <= waterline_margin < 1"
            )


class Rule:
    """One streaming detector; subclasses implement :meth:`check`.

    A rule that keeps firing every step would drown the alert log, so the
    base class enforces a per-rule cooldown of ``cooldown_steps`` between
    emissions (severity escalations bypass it).
    """

    name = "rule"

    def __init__(self, cooldown_steps: int = 4):
        self.cooldown_steps = cooldown_steps
        self._last_fired_step: int | None = None
        self._last_severity: Severity | None = None

    def evaluate(self, snapshot: StepSnapshot) -> list[Alert]:
        alert = self.check(snapshot)
        if alert is None:
            return []
        if (
            self._last_fired_step is not None
            and snapshot.step - self._last_fired_step < self.cooldown_steps
            and (self._last_severity is None or alert.severity <= self._last_severity)
        ):
            return []
        self._last_fired_step = snapshot.step
        self._last_severity = alert.severity
        return [alert]

    def check(self, snapshot: StepSnapshot) -> Alert | None:
        raise NotImplementedError


class StalenessLagRule(Rule):
    """Lock-free updater sweep lag vs the configured update interval.

    Reads the ``updater.lag_iterations`` gauge (set by the engine and the
    threaded trainer) or, failing that, derives the lag from the
    ``engine.steps`` / ``engine.update_sweeps`` counters.
    """

    name = "staleness_lag"

    def __init__(self, interval: int, tolerance: float, **kw):
        super().__init__(**kw)
        self.interval = max(1, interval)
        self.tolerance = tolerance

    def check(self, snapshot: StepSnapshot) -> Alert | None:
        lag = snapshot.gauges.get("updater.lag_iterations")
        if lag is None:
            steps = snapshot.counters.get("engine.steps", 0)
            sweeps = snapshot.counters.get("engine.update_sweeps", 0)
            lag = steps - sweeps * self.interval
        budget = self.interval * self.tolerance
        if lag <= budget:
            return None
        severity = (
            Severity.CRITICAL if lag > 2 * self.interval * self.tolerance
            else Severity.WARNING
        )
        return Alert(
            rule=self.name,
            severity=severity,
            step=snapshot.step,
            message=(
                f"updater lags {lag:.0f} iterations behind the GPU loop "
                f"(budget {budget:.1f} at update_interval={self.interval})"
            ),
            evidence={
                "lag_iterations": float(lag),
                "update_interval": self.interval,
                "budget_iterations": budget,
            },
        )


class CacheThrashRule(Rule):
    """Windowed GPU-cache hit-rate collapse.

    The engine counts ``cache.prefetch_hits`` / ``cache.demand_fetches``;
    a healthy steady state replays the recorded access order and hits. A
    collapse means the working set no longer fits — every fetch pays a
    PCIe round trip.
    """

    name = "cache_thrash"

    def __init__(self, window: int, warmup_steps: int, floor: float,
                 critical: float, **kw):
        kw.setdefault("cooldown_steps", window)
        super().__init__(**kw)
        self.window = window
        self.warmup_steps = warmup_steps
        self.floor = floor
        self.critical = critical
        self._history: deque[tuple[float, float]] = deque(maxlen=window + 1)

    def check(self, snapshot: StepSnapshot) -> Alert | None:
        hits = snapshot.counters.get("cache.prefetch_hits", 0)
        demands = snapshot.counters.get("cache.demand_fetches", 0)
        self._history.append((hits, demands))
        if snapshot.step <= self.warmup_steps or len(self._history) < 2:
            return None
        first_hits, first_demands = self._history[0]
        delta_hits = hits - first_hits
        delta_demands = demands - first_demands
        total = delta_hits + delta_demands
        if total <= 0:
            return None
        rate = delta_hits / total
        if rate >= self.floor:
            return None
        severity = Severity.CRITICAL if rate < self.critical else Severity.WARNING
        return Alert(
            rule=self.name,
            severity=severity,
            step=snapshot.step,
            message=(
                f"GPU-cache hit rate collapsed to {rate:.0%} over the last "
                f"{len(self._history) - 1} steps (floor {self.floor:.0%})"
            ),
            evidence={
                "window_hit_rate": rate,
                "window_hits": float(delta_hits),
                "window_demand_fetches": float(delta_demands),
                "window_steps": len(self._history) - 1,
            },
        )


class TierBandwidthRule(Rule):
    """Per-(src, dst) edge traffic above a per-step byte budget."""

    name = "tier_bandwidth"
    _PREFIX = "pages.moved_bytes{"

    def __init__(self, budget_bytes_per_step: int, window: int, **kw):
        kw.setdefault("cooldown_steps", window)
        super().__init__(**kw)
        self.budget = budget_bytes_per_step
        self.window = window
        self._history: dict[str, deque[float]] = {}

    @staticmethod
    def _edge_of(key: str) -> str:
        # "pages.moved_bytes{dst=gpu,src=cpu}" -> "cpu->gpu"
        labels = dict(
            part.split("=", 1)
            for part in key[key.index("{") + 1:-1].split(",")
        )
        return f"{labels.get('src', '?')}->{labels.get('dst', '?')}"

    def check(self, snapshot: StepSnapshot) -> Alert | None:
        worst: Alert | None = None
        for key, value in snapshot.counters.items():
            if not key.startswith(self._PREFIX):
                continue
            history = self._history.setdefault(
                key, deque(maxlen=self.window + 1)
            )
            history.append(float(value))
            if len(history) < 2:
                continue
            steps = len(history) - 1
            per_step = (history[-1] - history[0]) / steps
            if per_step <= self.budget:
                continue
            severity = (
                Severity.CRITICAL if per_step > 2 * self.budget
                else Severity.WARNING
            )
            edge = self._edge_of(key)
            alert = Alert(
                rule=self.name,
                severity=severity,
                step=snapshot.step,
                message=(
                    f"tier edge {edge} moving {per_step / MiB:.1f} MiB/step "
                    f"(budget {self.budget / MiB:.1f} MiB/step)"
                ),
                evidence={
                    "edge": edge,
                    "bytes_per_step": per_step,
                    "budget_bytes_per_step": float(self.budget),
                    "window_steps": steps,
                },
            )
            if worst is None or alert.severity > worst.severity:
                worst = alert
        return worst


class WaterlineRule(Rule):
    """Tier headroom below margin: the OOM-near-miss tracker.

    Tracks ``free / capacity`` per tier from the memory report supplied
    at each step boundary; the recent waterline history rides along as
    evidence so a fired alert explains the trajectory, not just the
    instant.
    """

    name = "waterline"

    def __init__(self, margin: float, critical: float, history: int, **kw):
        super().__init__(**kw)
        self.margin = margin
        self.critical = critical
        self._history: dict[str, deque[float]] = {}
        self._history_len = history

    def check(self, snapshot: StepSnapshot) -> Alert | None:
        worst: Alert | None = None
        for tier, stats in snapshot.memory.items():
            used = stats.get("used_bytes", 0)
            free = stats.get("free_bytes", 0)
            capacity = used + free
            if capacity <= 0:
                continue
            headroom = free / capacity
            history = self._history.setdefault(
                tier, deque(maxlen=self._history_len)
            )
            history.append(headroom)
            if headroom >= self.margin:
                continue
            severity = (
                Severity.CRITICAL if headroom <= self.critical
                else Severity.WARNING
            )
            alert = Alert(
                rule=self.name,
                severity=severity,
                step=snapshot.step,
                message=(
                    f"{tier} headroom {headroom:.1%} below the "
                    f"{self.margin:.0%} margin (OOM near-miss)"
                ),
                evidence={
                    "tier": tier,
                    "headroom_fraction": headroom,
                    "margin": self.margin,
                    "free_bytes": float(free),
                    "capacity_bytes": float(capacity),
                    "recent_headroom": [round(h, 4) for h in history],
                },
            )
            if worst is None or alert.severity > worst.severity:
                worst = alert
        return worst


class RetryStormRule(Rule):
    """Transient-fault retries clustering inside a step window."""

    name = "retry_storm"

    def __init__(self, window: int, threshold: int, critical: int, **kw):
        kw.setdefault("cooldown_steps", window)
        super().__init__(**kw)
        self.window = window
        self.threshold = threshold
        self.critical = critical
        self._history: deque[float] = deque(maxlen=window + 1)

    def check(self, snapshot: StepSnapshot) -> Alert | None:
        self._history.append(float(snapshot.counters.get("retry.attempts", 0)))
        if len(self._history) < 2:
            return None
        in_window = self._history[-1] - self._history[0]
        if in_window < self.threshold:
            return None
        severity = (
            Severity.CRITICAL if in_window >= self.critical else Severity.WARNING
        )
        return Alert(
            rule=self.name,
            severity=severity,
            step=snapshot.step,
            message=(
                f"{in_window:.0f} I/O retries in the last "
                f"{len(self._history) - 1} steps (threshold {self.threshold})"
            ),
            evidence={
                "retries_in_window": in_window,
                "window_steps": len(self._history) - 1,
                "threshold": self.threshold,
            },
        )


class WorkerLivenessRule(Rule):
    """A cluster worker stopped heartbeating (crash/partition suspect).

    The cluster supervisor mirrors the coordinator's failure-detector
    view into ``cluster.heartbeat.missed{worker=...}`` gauges (plus
    ``cluster.heartbeat.age_seconds``); this rule fires WARNING when any
    worker misses a deadline and CRITICAL once the miss count reaches
    the eviction territory. Runs without a cluster too — no gauges means
    no alert.
    """

    name = "worker_liveness"
    _PREFIX = "cluster.heartbeat.missed{"

    def __init__(self, warning: int, critical: int, **kw):
        super().__init__(**kw)
        if not 1 <= warning <= critical:
            raise ConfigurationError(
                "need 1 <= liveness_missed_warning <= liveness_missed_critical"
            )
        self.warning = warning
        self.critical = critical

    @staticmethod
    def _worker_of(key: str) -> str:
        labels = dict(
            part.split("=", 1)
            for part in key[key.index("{") + 1:-1].split(",")
        )
        return labels.get("worker", "?")

    def check(self, snapshot: StepSnapshot) -> Alert | None:
        lagging: list[tuple[str, float]] = []
        for key, missed in snapshot.gauges.items():
            if key.startswith(self._PREFIX) and missed >= self.warning:
                lagging.append((self._worker_of(key), float(missed)))
        if not lagging:
            return None
        lagging.sort(key=lambda item: (-item[1], item[0]))
        worst_worker, worst_missed = lagging[0]
        severity = (
            Severity.CRITICAL if worst_missed >= self.critical
            else Severity.WARNING
        )
        return Alert(
            rule=self.name,
            severity=severity,
            step=snapshot.step,
            message=(
                f"worker {worst_worker} missed {worst_missed:.0f} "
                f"heartbeat(s) (evict threshold {self.critical}); "
                f"{len(lagging)} worker(s) lagging"
            ),
            evidence={
                "workers": {worker: missed for worker, missed in lagging},
                "missed_warning": self.warning,
                "missed_critical": self.critical,
            },
        )


def default_rules(config: WatchdogConfig) -> list[Rule]:
    """The standard detector set, thresholds from ``config``."""
    return [
        StalenessLagRule(config.update_interval, config.staleness_tolerance),
        CacheThrashRule(
            config.cache_window, config.cache_warmup_steps,
            config.cache_hit_rate_floor, config.cache_hit_rate_critical,
        ),
        TierBandwidthRule(
            config.edge_budget_bytes_per_step, config.bandwidth_window
        ),
        WaterlineRule(
            config.waterline_margin, config.waterline_critical,
            config.waterline_history,
        ),
        RetryStormRule(
            config.retry_window, config.retry_storm_threshold,
            config.retry_storm_critical,
        ),
        WorkerLivenessRule(
            config.liveness_missed_warning, config.liveness_missed_critical,
        ),
    ]


class Watchdog:
    """Evaluates the rule set at step boundaries and publishes alerts."""

    def __init__(self, telemetry=None, bus=None, config: WatchdogConfig | None = None,
                 rules: list[Rule] | None = None):
        if telemetry is None:
            from repro.telemetry.core import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        #: The telemetry whose registry the watchdog both reads (rule
        #: inputs) and writes (``watchdog.alerts`` counters).
        self.telemetry = telemetry
        #: Optional repro.runtime.events.EventBus: every alert completes a
        #: uniquely named ``observe.alert.<seq>.<rule>`` event.
        self.bus = bus
        self.config = config or WatchdogConfig()
        self.rules = rules if rules is not None else default_rules(self.config)
        self.alerts: list[Alert] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def snapshot(self, step: int, memory: dict | None = None) -> StepSnapshot:
        """Freeze the registry (and an optional memory report) for rules."""
        counters: dict = {}
        gauges: dict = {}
        if self.telemetry.enabled:
            dump = self.telemetry.registry.dump()
            counters = dump["counters"]
            gauges = dump["gauges"]
        return StepSnapshot(
            step=step, counters=counters, gauges=gauges, memory=memory or {}
        )

    def observe_step(
        self,
        step: int,
        memory: dict | None = None,
        snapshot: StepSnapshot | None = None,
    ) -> list[Alert]:
        """Evaluate every rule at one step boundary; returns new alerts."""
        snap = snapshot if snapshot is not None else self.snapshot(step, memory)
        fired: list[Alert] = []
        for rule in self.rules:
            fired.extend(rule.evaluate(snap))
        for alert in fired:
            self._emit(alert)
        return fired

    def observe_engine(self, engine, step: int | None = None) -> list[Alert]:
        """Convenience: observe an :class:`AngelModel` at a step boundary."""
        return self.observe_step(
            step if step is not None else getattr(engine, "_iteration", 0),
            memory=engine.memory_report(),
        )

    def _emit(self, alert: Alert) -> None:
        self.alerts.append(alert)
        self._seq += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "watchdog.alerts", rule=alert.rule, severity=alert.severity.name
            ).inc()
            self.telemetry.instant(
                f"alert/{alert.rule}", track="watchdog",
                severity=alert.severity.name, step=alert.step,
            )
        if self.bus is not None:
            self.bus.complete(f"observe.alert.{self._seq}.{alert.rule}")

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def payload(self) -> list[dict]:
        """The alert log as plain dicts (lands in BENCH_telemetry.json)."""
        return [alert.to_dict() for alert in self.alerts]

    @property
    def worst_severity(self) -> Severity | None:
        if not self.alerts:
            return None
        return max(alert.severity for alert in self.alerts)
