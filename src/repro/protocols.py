"""Structural types for the engine's pluggable collaborators.

:class:`~repro.engine.angel.AngelConfig` historically typed its optional
collaborators as ``object | None`` to avoid importing the resilience and
telemetry packages from the engine (they build *on* it). These
``typing.Protocol`` definitions keep the layering — no imports, purely
structural — while documenting and type-checking exactly the surface the
engine relies on. Any object with the right methods satisfies them;
:class:`~repro.resilience.faults.FaultPlan`,
:class:`~repro.resilience.retry.RetryPolicy` and
:class:`~repro.telemetry.core.Telemetry` are the in-repo implementations.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class FaultPlanLike(Protocol):
    """Injects faults into a tier's physical backend (chaos testing).

    The engine hands the plan to
    :func:`repro.resilience.faults.inject_faults`, which wraps the SSD
    pool's backend; ``on_io`` is consulted before every read/write and
    may raise, sleep, or corrupt (torn writes return ``"torn"``).
    """

    def on_io(self, tier: str, op: str, nbytes: int) -> str | None: ...

    def tier_dead(self, tier: str) -> bool: ...


@runtime_checkable
class RetryPolicyLike(Protocol):
    """Absorbs transient tier-I/O errors on page moves and state flushes.

    ``run`` executes ``fn``, retrying
    :class:`~repro.errors.TransientIOError` with backoff until a deadline
    and re-raising anything permanent.
    """

    def run(self, fn: Any) -> Any: ...


@runtime_checkable
class TelemetryLike(Protocol):
    """The observability facade the engine emits into.

    Structural mirror of :class:`repro.telemetry.core.Telemetry`: spans
    for forward/backward/update sweeps, get-or-create instruments, and
    the domain vocabulary for page traffic and pipeline stalls. A
    disabled instance must keep every operation a cheap no-op.
    """

    enabled: bool
    clock: Any

    def span(self, name: str, track: str | None = None, **args: Any) -> Any: ...

    def counter(self, name: str, **labels: Any) -> Any: ...

    def gauge(self, name: str, **labels: Any) -> Any: ...

    def histogram(self, name: str, **labels: Any) -> Any: ...

    def record_page_move(self, src: str, dst: str, nbytes: int) -> None: ...

    def record_prefetch(self, outcome: str) -> None: ...

    def record_stall(self, edge: str, seconds: float) -> None: ...


__all__ = ["FaultPlanLike", "RetryPolicyLike", "TelemetryLike"]
