"""Structural types for the engine's pluggable collaborators.

:class:`~repro.engine.angel.AngelConfig` historically typed its optional
collaborators as ``object | None`` to avoid importing the resilience and
telemetry packages from the engine (they build *on* it). These
``typing.Protocol`` definitions keep the layering — no imports, purely
structural — while documenting and type-checking exactly the surface the
engine relies on. Any object with the right methods satisfies them;
:class:`~repro.resilience.faults.FaultPlan`,
:class:`~repro.resilience.retry.RetryPolicy` and
:class:`~repro.telemetry.core.Telemetry` are the in-repo implementations.

The physical storage contract of the page pools lives here too:
:class:`PoolBackend` is the buffer-protocol API every tier backend
implements (``readinto``/``write_from`` operate on caller-supplied
buffers, never intermediate ``bytes``), and :class:`ArenaBackendLike`
extends it with ``view`` for RAM-like tiers whose arena can hand out
zero-copy ``memoryview`` windows. :class:`LegacyPoolBackendLike` is the
pre-arena bytes-based duck type; :class:`repro.memory.pool.DevicePool`
adapts such backends through a one-release deprecation shim.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class PoolBackend(Protocol):
    """Physical page storage for one :class:`~repro.memory.pool.DevicePool`.

    A backend owns ``num_pages`` fixed-size page slots. All data movement
    is expressed over the buffer protocol: ``readinto`` fills a
    caller-supplied writable buffer, ``write_from`` consumes a readable
    one, and neither ever materializes an intermediate ``bytes`` object.
    ``buf`` may span *multiple consecutive pages* — backends store their
    pages contiguously (one arena), so a coalesced run of pages is one
    call. Both return the number of bytes transferred, which must equal
    ``len(buf)`` (short reads are looped over internally and a shortfall
    is an error, never a silent truncation).
    """

    def readinto(self, index: int, offset: int, buf) -> int: ...

    def write_from(self, index: int, offset: int, buf) -> int: ...

    def close(self) -> None: ...


@runtime_checkable
class ArenaBackendLike(PoolBackend, Protocol):
    """A :class:`PoolBackend` whose arena supports zero-copy windows.

    RAM-like tiers (process memory, ``multiprocessing.shared_memory``)
    additionally expose ``view``: a writable ``memoryview`` of the page
    range starting at ``index * page_bytes + offset``, valid until
    ``close``. Two arena backends move a page with a single
    ``dst.view(...)[:] = src.view(...)`` slice copy; file tiers do not
    implement ``view`` and take the ``readinto``/``write_from`` path.
    """

    def view(self, index: int, offset: int, nbytes: int) -> memoryview: ...


@runtime_checkable
class LegacyPoolBackendLike(Protocol):
    """The deprecated bytes-based backend duck type (pre-arena API).

    ``read`` returns freshly-allocated ``bytes`` and ``write`` consumes
    them — one avoidable copy per call. Backends implementing only this
    surface still work for one release:
    :class:`repro.memory.pool.DevicePool` wraps them in a
    ``LegacyBackendAdapter`` (copy + ``DeprecationWarning``).
    """

    def read(self, index: int, offset: int, nbytes: int) -> bytes: ...

    def write(self, index: int, offset: int, data: bytes) -> None: ...

    def close(self) -> None: ...


@runtime_checkable
class FaultPlanLike(Protocol):
    """Injects faults into a tier's physical backend (chaos testing).

    The engine hands the plan to
    :func:`repro.resilience.faults.inject_faults`, which wraps the SSD
    pool's backend; ``on_io`` is consulted before every read/write and
    may raise, sleep, or corrupt (torn writes return ``"torn"``).
    """

    def on_io(self, tier: str, op: str, nbytes: int) -> str | None: ...

    def tier_dead(self, tier: str) -> bool: ...


@runtime_checkable
class RetryPolicyLike(Protocol):
    """Absorbs transient tier-I/O errors on page moves and state flushes.

    ``run`` executes ``fn``, retrying
    :class:`~repro.errors.TransientIOError` with backoff until a deadline
    and re-raising anything permanent.
    """

    def run(self, fn: Any) -> Any: ...


@runtime_checkable
class TelemetryLike(Protocol):
    """The observability facade the engine emits into.

    Structural mirror of :class:`repro.telemetry.core.Telemetry`: spans
    for forward/backward/update sweeps, get-or-create instruments, and
    the domain vocabulary for page traffic and pipeline stalls. A
    disabled instance must keep every operation a cheap no-op.
    """

    enabled: bool
    clock: Any

    def span(self, name: str, track: str | None = None, **args: Any) -> Any: ...

    def counter(self, name: str, **labels: Any) -> Any: ...

    def gauge(self, name: str, **labels: Any) -> Any: ...

    def histogram(self, name: str, **labels: Any) -> Any: ...

    def record_page_move(self, src: str, dst: str, nbytes: int) -> None: ...

    def record_prefetch(self, outcome: str) -> None: ...

    def record_stall(self, edge: str, seconds: float) -> None: ...


__all__ = [
    "ArenaBackendLike",
    "FaultPlanLike",
    "LegacyPoolBackendLike",
    "PoolBackend",
    "RetryPolicyLike",
    "TelemetryLike",
]
