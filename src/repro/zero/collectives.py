"""Ring-collective cost models and the data-plane ``Transport`` contract.

Two halves of Section 5's Communicator live here:

- :class:`CollectiveModel` — the *cost* side (NCCL-style ring
  arithmetic): moving a logical buffer of ``B`` bytes among ``N`` ranks
  costs ``B * (N - 1) / N`` bytes on the busiest link, so
  ``t = B * (N - 1) / N / busbw + hops * latency``. Within one server the
  bus bandwidth is NVLink; across servers the ring crosses the per-server
  NIC, which ``gpus_per_server`` ranks share.

- :class:`Transport` — the *data* side: the pluggable collective
  interface trainer ranks actually exchange bytes through. Transfers are
  page-granular (the unit of inter-process traffic, per §4.1 and
  PatrickStar), and reductions sum rank slots in ascending rank order so
  every implementation is deterministic. :class:`InProcessGroup` backs
  single-process ranks (threads or the sequential reference loop);
  :class:`repro.cluster.transport.SharedMemoryTransport` carries the same
  contract across real OS processes via ``multiprocessing.shared_memory``.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import CommunicationError
from repro.hardware.cluster import ClusterSpec
from repro.units import KiB


@dataclass(frozen=True)
class CollectiveModel:
    """Collective durations for a given cluster."""

    cluster: ClusterSpec
    #: Optional repro.telemetry.Telemetry: every costed collective adds
    #: its logical byte volume to ``collective.<kind>_bytes`` counters, so
    #: simulated traffic is accounted the same way runtime traffic is.
    telemetry: object = None

    def _record(self, kind: str, nbytes: int) -> None:
        if self.telemetry is not None:
            self.telemetry.record_collective(kind, nbytes)

    def _participants_ok(self, num_ranks: int, nbytes: int) -> None:
        if num_ranks <= 0:
            raise CommunicationError("collectives need at least one rank")
        if num_ranks > self.cluster.num_gpus:
            raise CommunicationError(
                f"{num_ranks} ranks exceed the cluster's {self.cluster.num_gpus} GPUs"
            )
        if nbytes < 0:
            raise CommunicationError("cannot communicate a negative byte count")

    def bus_bandwidth(self, num_ranks: int) -> float:
        """Per-rank sustained bandwidth of the ring's busiest link."""
        server = self.cluster.server
        if num_ranks <= server.num_gpus:
            return server.nvlink.bandwidth
        # The ring crosses servers: each server's NIC carries the traffic
        # of all its local ranks.
        return min(
            server.nvlink.bandwidth,
            server.nic.bandwidth / server.num_gpus,
        )

    def _ring_time(self, nbytes: int, num_ranks: int, volume_factor: float) -> float:
        self._participants_ok(num_ranks, nbytes)
        if num_ranks == 1 or nbytes == 0:
            return 0.0
        server = self.cluster.server
        latency = server.nvlink.latency
        if num_ranks > server.num_gpus:
            latency = server.nic.latency
        traffic = volume_factor * nbytes * (num_ranks - 1) / num_ranks
        return traffic / self.bus_bandwidth(num_ranks) + (num_ranks - 1) * latency

    def all_gather(self, nbytes: int, num_ranks: int) -> float:
        """Assemble a sharded buffer of total size ``nbytes`` on every rank."""
        duration = self._ring_time(nbytes, num_ranks, volume_factor=1.0)
        self._record("all_gather", nbytes)
        return duration

    def reduce_scatter(self, nbytes: int, num_ranks: int) -> float:
        """Reduce a replicated buffer and leave each rank its shard."""
        duration = self._ring_time(nbytes, num_ranks, volume_factor=1.0)
        self._record("reduce_scatter", nbytes)
        return duration

    def all_reduce(self, nbytes: int, num_ranks: int) -> float:
        """Reduce-scatter followed by all-gather: twice the ring traffic."""
        duration = self._ring_time(nbytes, num_ranks, volume_factor=2.0)
        self._record("all_reduce", nbytes)
        return duration

    def all_to_all(self, nbytes_per_rank: int, num_ranks: int) -> float:
        """Every rank exchanges ``nbytes_per_rank`` with all peers.

        Used by expert parallelism (Section 6.4): tokens are routed to the
        GPUs that own their experts. Each rank keeps 1/N of its traffic
        local, so the wire carries ``(N-1)/N`` of it; across servers it is
        NIC-bound, which is why T5-MoE scalability falls below GPT's
        ("more input data will be fed into the all-to-all communication of
        the MoE layer, which can result in throughput degradation").
        """
        self._participants_ok(num_ranks, nbytes_per_rank)
        self._record("all_to_all", nbytes_per_rank * num_ranks)
        if num_ranks == 1 or nbytes_per_rank == 0:
            return 0.0
        server = self.cluster.server
        wire_bytes = nbytes_per_rank * (num_ranks - 1) / num_ranks
        if num_ranks <= server.num_gpus:
            return wire_bytes / server.nvlink.bandwidth + server.nvlink.latency
        # Cross-server all-to-all: the fraction of each rank's traffic that
        # leaves the server shares the per-server NIC with the other local
        # ranks.
        local = server.num_gpus / num_ranks
        remote_bytes = wire_bytes * (1.0 - local)
        nic_per_rank = server.nic.bandwidth / server.num_gpus
        local_time = wire_bytes * local / server.nvlink.bandwidth
        remote_time = remote_bytes / nic_per_rank
        return local_time + remote_time + server.nic.latency


# ----------------------------------------------------------------------
# The data plane: pluggable Transport
# ----------------------------------------------------------------------
def shard_length(num_elements: int, world: int) -> int:
    """Per-rank shard length under ZeRO's even split (tail padded)."""
    if world <= 0:
        raise CommunicationError("world must be positive")
    return -(-num_elements // world)  # ceil


def copy_pages(dst: np.ndarray, src: np.ndarray, page_bytes: int) -> int:
    """Copy ``src`` into ``dst`` one page-sized chunk at a time.

    Pages are the unit of inter-process traffic (§4.1): every transport
    moves data through this loop so accounting and chunking stay uniform
    regardless of the backing medium. Returns the number of pages moved.
    """
    if dst.shape != src.shape:
        raise CommunicationError(
            f"page copy shape mismatch: {dst.shape} vs {src.shape}"
        )
    per_page = max(1, page_bytes // max(1, dst.itemsize))
    pages = 0
    for start in range(0, dst.size, per_page):
        dst[start:start + per_page] = src[start:start + per_page]
        pages += 1
    return pages


class Transport(abc.ABC):
    """Deterministic rank-to-rank collectives over flat numpy vectors.

    The contract every implementation honors:

    - ``all_gather(shard)`` — every rank contributes an equal-length 1-D
      array and receives the list of all ranks' arrays, indexed by rank.
    - ``reduce_scatter(full)`` — every rank contributes a full-length
      vector; rank ``r`` receives the elementwise sum of everyone's
      ``r``-th even-split slice (zero-padded tail, matching
      :func:`repro.checkpoint.reshard.split_even`). Summation runs in
      ascending rank order, so results are bit-reproducible.

    Data moves page by page (:func:`copy_pages`); implementations report
    traffic through the shared telemetry vocabulary
    (``collective.*_bytes`` plus ``transport.pages``).
    """

    def __init__(self, rank: int, world: int, page_bytes: int = 64 * KiB,
                 telemetry=None):
        if world <= 0 or not 0 <= rank < world:
            raise CommunicationError(
                f"rank {rank} outside a world of {world}"
            )
        if page_bytes <= 0:
            raise CommunicationError("page_bytes must be positive")
        if telemetry is None:
            from repro.telemetry.core import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.rank = rank
        self.world = world
        self.page_bytes = page_bytes
        self.telemetry = telemetry

    @abc.abstractmethod
    def all_gather(self, shard: np.ndarray) -> list[np.ndarray]:
        """Return every rank's ``shard``, indexed by rank."""

    @abc.abstractmethod
    def reduce_scatter(self, full: np.ndarray) -> np.ndarray:
        """Return this rank's shard of the elementwise sum of ``full``."""

    def close(self) -> None:  # pragma: no cover - default no-op
        """Release transport resources (idempotent)."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def pad_full(self, full: np.ndarray) -> np.ndarray:
        """Zero-pad a full vector to ``world * shard_length`` elements."""
        if full.ndim != 1:
            raise CommunicationError("transports operate on flat vectors")
        length = shard_length(full.size, self.world)
        padded = np.zeros(length * self.world, dtype=full.dtype)
        padded[:full.size] = full
        return padded

    def _account(self, kind: str, nbytes: int, pages: int) -> None:
        if not self.telemetry.enabled:
            return
        self.telemetry.record_collective(kind, nbytes)
        self.telemetry.counter("transport.pages", kind=kind).inc(pages)


class InProcessGroup:
    """A world of :class:`InProcessTransport` ranks in one process.

    Ranks run as threads (tests, the threaded trainer); a shared slot
    board plus a cyclic :class:`threading.Barrier` sequence the exchange.
    Deadline-bounded: a rank that never arrives breaks the barrier and
    every peer raises :class:`~repro.errors.CommunicationError` instead
    of hanging.
    """

    def __init__(self, world: int, page_bytes: int = 64 * KiB,
                 telemetry=None, timeout: float | None = 30.0):
        if world <= 0:
            raise CommunicationError("world must be positive")
        self.world = world
        self.page_bytes = page_bytes
        self.telemetry = telemetry
        self.timeout = timeout
        self._slots: list = [None] * world
        self._barrier = threading.Barrier(world)

    def transport(self, rank: int) -> "InProcessTransport":
        return InProcessTransport(rank, self, self.page_bytes, self.telemetry)

    def _sync(self) -> None:
        try:
            self._barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError as exc:
            raise CommunicationError(
                "in-process collective aborted: a rank never arrived"
            ) from exc


class InProcessTransport(Transport):
    """One rank's view of an :class:`InProcessGroup`."""

    def __init__(self, rank: int, group: InProcessGroup, page_bytes: int,
                 telemetry=None):
        super().__init__(rank, group.world, page_bytes, telemetry)
        self._group = group

    def all_gather(self, shard: np.ndarray) -> list[np.ndarray]:
        staged = np.empty_like(shard)
        pages = copy_pages(staged, shard, self.page_bytes)
        self._group._slots[self.rank] = staged
        self._group._sync()  # every slot published
        gathered = []
        for rank in range(self.world):
            source = self._group._slots[rank]
            out = np.empty_like(source)
            pages += copy_pages(out, source, self.page_bytes)
            gathered.append(out)
        self._group._sync()  # every rank done reading; slots reusable
        self._account("all_gather", shard.nbytes * self.world, pages)
        return gathered

    def reduce_scatter(self, full: np.ndarray) -> np.ndarray:
        padded = self.pad_full(full)
        length = padded.size // self.world
        self._group._slots[self.rank] = padded
        self._group._sync()
        lo, hi = self.rank * length, (self.rank + 1) * length
        acc = np.zeros(length, dtype=padded.dtype)
        pages = 0
        for rank in range(self.world):  # ascending: deterministic sum
            slice_r = self._group._slots[rank][lo:hi]
            staged = np.empty_like(slice_r)
            pages += copy_pages(staged, slice_r, self.page_bytes)
            acc += staged
        self._group._sync()
        self._account("reduce_scatter", full.nbytes, pages)
        return acc
