"""Ring-collective cost models (NCCL-style, Section 5's Communicator).

Standard ring-algorithm arithmetic: moving a logical buffer of ``B`` bytes
among ``N`` ranks costs ``B * (N - 1) / N`` bytes on the busiest link, so
``t = B * (N - 1) / N / busbw + hops * latency``. Within one server the bus
bandwidth is NVLink; across servers the ring crosses the per-server NIC,
which ``gpus_per_server`` ranks share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CommunicationError
from repro.hardware.cluster import ClusterSpec


@dataclass(frozen=True)
class CollectiveModel:
    """Collective durations for a given cluster."""

    cluster: ClusterSpec
    #: Optional repro.telemetry.Telemetry: every costed collective adds
    #: its logical byte volume to ``collective.<kind>_bytes`` counters, so
    #: simulated traffic is accounted the same way runtime traffic is.
    telemetry: object = None

    def _record(self, kind: str, nbytes: int) -> None:
        if self.telemetry is not None:
            self.telemetry.record_collective(kind, nbytes)

    def _participants_ok(self, num_ranks: int, nbytes: int) -> None:
        if num_ranks <= 0:
            raise CommunicationError("collectives need at least one rank")
        if num_ranks > self.cluster.num_gpus:
            raise CommunicationError(
                f"{num_ranks} ranks exceed the cluster's {self.cluster.num_gpus} GPUs"
            )
        if nbytes < 0:
            raise CommunicationError("cannot communicate a negative byte count")

    def bus_bandwidth(self, num_ranks: int) -> float:
        """Per-rank sustained bandwidth of the ring's busiest link."""
        server = self.cluster.server
        if num_ranks <= server.num_gpus:
            return server.nvlink.bandwidth
        # The ring crosses servers: each server's NIC carries the traffic
        # of all its local ranks.
        return min(
            server.nvlink.bandwidth,
            server.nic.bandwidth / server.num_gpus,
        )

    def _ring_time(self, nbytes: int, num_ranks: int, volume_factor: float) -> float:
        self._participants_ok(num_ranks, nbytes)
        if num_ranks == 1 or nbytes == 0:
            return 0.0
        server = self.cluster.server
        latency = server.nvlink.latency
        if num_ranks > server.num_gpus:
            latency = server.nic.latency
        traffic = volume_factor * nbytes * (num_ranks - 1) / num_ranks
        return traffic / self.bus_bandwidth(num_ranks) + (num_ranks - 1) * latency

    def all_gather(self, nbytes: int, num_ranks: int) -> float:
        """Assemble a sharded buffer of total size ``nbytes`` on every rank."""
        duration = self._ring_time(nbytes, num_ranks, volume_factor=1.0)
        self._record("all_gather", nbytes)
        return duration

    def reduce_scatter(self, nbytes: int, num_ranks: int) -> float:
        """Reduce a replicated buffer and leave each rank its shard."""
        duration = self._ring_time(nbytes, num_ranks, volume_factor=1.0)
        self._record("reduce_scatter", nbytes)
        return duration

    def all_reduce(self, nbytes: int, num_ranks: int) -> float:
        """Reduce-scatter followed by all-gather: twice the ring traffic."""
        duration = self._ring_time(nbytes, num_ranks, volume_factor=2.0)
        self._record("all_reduce", nbytes)
        return duration

    def all_to_all(self, nbytes_per_rank: int, num_ranks: int) -> float:
        """Every rank exchanges ``nbytes_per_rank`` with all peers.

        Used by expert parallelism (Section 6.4): tokens are routed to the
        GPUs that own their experts. Each rank keeps 1/N of its traffic
        local, so the wire carries ``(N-1)/N`` of it; across servers it is
        NIC-bound, which is why T5-MoE scalability falls below GPT's
        ("more input data will be fed into the all-to-all communication of
        the MoE layer, which can result in throughput degradation").
        """
        self._participants_ok(num_ranks, nbytes_per_rank)
        self._record("all_to_all", nbytes_per_rank * num_ranks)
        if num_ranks == 1 or nbytes_per_rank == 0:
            return 0.0
        server = self.cluster.server
        wire_bytes = nbytes_per_rank * (num_ranks - 1) / num_ranks
        if num_ranks <= server.num_gpus:
            return wire_bytes / server.nvlink.bandwidth + server.nvlink.latency
        # Cross-server all-to-all: the fraction of each rank's traffic that
        # leaves the server shares the per-server NIC with the other local
        # ranks.
        local = server.num_gpus / num_ranks
        remote_bytes = wire_bytes * (1.0 - local)
        nic_per_rank = server.nic.bandwidth / server.num_gpus
        local_time = wire_bytes * local / server.nvlink.bandwidth
        remote_time = remote_bytes / nic_per_rank
        return local_time + remote_time + server.nic.latency
