"""ZeRO-3-style even parameter sharding (Section 3.2, "Parameter Sharding").

"We adopt the parameter sharding approach proposed by ZeRO, which evenly
splits each parameter among multiple GPUs. When a parameter needs to be
calculated, the complete parameter is obtained through an all-gather
operation."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ShardingError
from repro.models.transformer import ModelSpec
from repro.tracer.tracer import IterationTrace


def shard_bytes(total_bytes: int, num_ranks: int, page_bytes: int = 1) -> int:
    """Per-rank bytes after even sharding, rounded up to page granularity."""
    if num_ranks <= 0:
        raise ShardingError("num_ranks must be positive")
    if total_bytes < 0:
        raise ShardingError("total_bytes must be >= 0")
    per_rank = math.ceil(total_bytes / num_ranks)
    if page_bytes > 1:
        per_rank = math.ceil(per_rank / page_bytes) * page_bytes
    return per_rank


@dataclass(frozen=True)
class ShardingPlan:
    """Per-rank memory view of a model's states under ZeRO-3 sharding.

    Every byte figure is *per rank*: the FP16 parameter shard, the FP16
    gradient shard, and the FP32 optimizer shard (master + momentum +
    variance). Gathered (transient) parameters are accounted separately
    because they exist only around a layer's computation.
    """

    num_ranks: int
    param_shard_bytes: int
    grad_shard_bytes: int
    optim_shard_bytes: int
    largest_layer_params_fp16: int

    @staticmethod
    def from_model(model: ModelSpec, num_ranks: int, page_bytes: int = 1) -> "ShardingPlan":
        if num_ranks <= 0:
            raise ShardingError("num_ranks must be positive")
        params_fp16 = sum(
            p.bytes_single for layer in model.layers for p in layer.params
        )
        optim_fp32 = model.optims_bytes
        largest = max(
            sum(p.bytes_single for p in layer.params) for layer in model.layers
        )
        return ShardingPlan(
            num_ranks=num_ranks,
            param_shard_bytes=shard_bytes(params_fp16, num_ranks, page_bytes),
            grad_shard_bytes=shard_bytes(params_fp16, num_ranks, page_bytes),
            optim_shard_bytes=shard_bytes(optim_fp32, num_ranks, page_bytes),
            largest_layer_params_fp16=largest,
        )

    @staticmethod
    def from_trace(trace: IterationTrace, num_ranks: int, page_bytes: int = 1) -> "ShardingPlan":
        params_fp16 = trace.total_fp16_param_bytes
        optim = trace.total_optim_bytes
        largest = max(layer.param_bytes_fp16 for layer in trace.layers)
        return ShardingPlan(
            num_ranks=num_ranks,
            param_shard_bytes=shard_bytes(params_fp16, num_ranks, page_bytes),
            grad_shard_bytes=shard_bytes(params_fp16, num_ranks, page_bytes),
            optim_shard_bytes=shard_bytes(optim, num_ranks, page_bytes),
            largest_layer_params_fp16=largest,
        )

    @property
    def model_state_shard_bytes(self) -> int:
        """Resident model-state bytes each rank is responsible for."""
        return self.param_shard_bytes + self.grad_shard_bytes + self.optim_shard_bytes

    @property
    def gathered_working_set_bytes(self) -> int:
        """Transient GPU bytes needed to compute the largest layer: the
        fully gathered FP16 parameters of that layer."""
        return self.largest_layer_params_fp16
