"""Expert parallelism for MoE models (Section 6.4).

"Angel-PTM trained T5-MoE models using expert parallelism, where expert
parameters within an MoE layer are sharded among all GPUs while non-MoE
parameters are duplicated." Token routing incurs two all-to-all exchanges
per MoE layer (dispatch to the owning GPUs, combine back) in both the
forward and backward passes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShardingError
from repro.models.moe import MoEConfig
from repro.models.transformer import FP16
from repro.zero.collectives import CollectiveModel


@dataclass(frozen=True)
class ExpertParallelPlan:
    """Placement and communication plan for one MoE model."""

    moe: MoEConfig
    num_gpus: int
    num_moe_layers: int

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ShardingError("num_gpus must be positive")
        if self.moe.num_experts % self.num_gpus:
            raise ShardingError(
                f"{self.moe.num_experts} experts do not shard evenly over "
                f"{self.num_gpus} GPUs"
            )

    @property
    def experts_per_gpu(self) -> int:
        return self.moe.num_experts // self.num_gpus

    @property
    def expert_params_per_gpu(self) -> int:
        """Expert parameters hosted by one GPU across all MoE layers."""
        return self.experts_per_gpu * self.moe.expert_param_count * self.num_moe_layers

    def dispatch_bytes_per_rank(self, batch_size: int, seq_len: int) -> int:
        """Bytes one rank contributes to a single all-to-all dispatch.

        Capacity-factor-1 top-k routing sends each token's hidden state to
        ``top_k`` experts.
        """
        if batch_size <= 0 or seq_len <= 0:
            raise ShardingError("batch and sequence sizes must be positive")
        return batch_size * seq_len * self.moe.d_model * FP16 * self.moe.top_k

    def alltoall_time_per_layer(
        self, collectives: CollectiveModel, batch_size: int, seq_len: int
    ) -> float:
        """All-to-all time of one MoE layer's forward pass.

        Two exchanges (dispatch + combine) per forward; the backward pass
        repeats them for the gradients, which callers account by invoking
        this twice.
        """
        nbytes = self.dispatch_bytes_per_rank(batch_size, seq_len)
        single = collectives.all_to_all(nbytes, self.num_gpus)
        return 2.0 * single
