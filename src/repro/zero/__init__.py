"""ZeRO-style data parallelism substrate (Sections 2.3 and 3.2).

Angel-PTM adopts data parallelism with parameter sharding: each parameter
is split evenly across GPUs and re-assembled via all-gather just in time
for computation. This package provides the sharding arithmetic, the
collective-communication cost models (ring algorithms over NVLink within a
server, RoCE NICs across servers), and the expert-parallel all-to-all used
by T5-MoE training (Section 6.4).
"""

from repro.zero.collectives import CollectiveModel
from repro.zero.sharding import ShardingPlan, shard_bytes
from repro.zero.expert_parallel import ExpertParallelPlan

__all__ = ["CollectiveModel", "ShardingPlan", "shard_bytes", "ExpertParallelPlan"]
