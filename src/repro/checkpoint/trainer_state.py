"""Capturing and restoring full training state.

Two levels:

- plain model + :class:`MixedPrecisionAdam` (any training loop), and
- a full functional :class:`~repro.engine.angel.AngelModel`, whose
  authoritative FP32 states live in paged (possibly file-backed SSD)
  tensors — exactly what survives the GPU-failure restart of Section 3.1.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CheckpointError
from repro.checkpoint.snapshot import Snapshot
from repro.nn.layers import Module
from repro.nn.optim import MixedPrecisionAdam


def capture_training_state(
    model: Module,
    optimizer: MixedPrecisionAdam,
    step: int = 0,
    extra_metadata: dict | None = None,
) -> Snapshot:
    """Snapshot parameters, master states and Adam moments."""
    names = [name for name, _ in model.named_parameters()]
    if len(names) != len(optimizer.params):
        raise CheckpointError("optimizer does not cover the model's parameters")
    snapshot = Snapshot(
        metadata={
            "step": step,
            "adam_t": optimizer.t,
            "param_names": names,
            **(extra_metadata or {}),
        }
    )
    for index, (name, param) in enumerate(model.named_parameters()):
        snapshot.add_array(f"param/{name}", param.data)
        snapshot.add_array(f"master/{name}", optimizer.master[index])
        snapshot.add_array(f"m/{name}", optimizer.m[index])
        snapshot.add_array(f"v/{name}", optimizer.v[index])
    return snapshot


def restore_training_state(
    snapshot: Snapshot, model: Module, optimizer: MixedPrecisionAdam
) -> int:
    """Load a snapshot into ``model``/``optimizer``; returns the step."""
    names = snapshot.metadata["param_names"]
    current = [name for name, _ in model.named_parameters()]
    if names != current:
        raise CheckpointError(
            "model architecture does not match the checkpoint "
            f"({len(names)} vs {len(current)} parameters)"
        )
    for index, (name, param) in enumerate(model.named_parameters()):
        for prefix, destination in (
            ("param", param.data),
            ("master", optimizer.master[index]),
            ("m", optimizer.m[index]),
            ("v", optimizer.v[index]),
        ):
            source = snapshot.arrays[f"{prefix}/{name}"]
            if source.shape != destination.shape:
                raise CheckpointError(
                    f"shape mismatch restoring {prefix}/{name}: "
                    f"{source.shape} vs {destination.shape}"
                )
            destination[...] = source
    optimizer.t = int(snapshot.metadata["adam_t"])
    return int(snapshot.metadata["step"])


def capture_engine_state(engine, step: int = 0) -> Snapshot:
    """Snapshot a functional AngelModel from its *paged* tensors.

    The pages are authoritative (they may live on the file-backed SSD
    tier); reading through them exercises the same path a production
    checkpointer would.
    """
    snapshot = Snapshot(
        metadata={
            "step": step,
            "adam_t": engine.optimizer.t,
            "param_names": [m.name for m in engine._managed],
            "iteration": engine._iteration,
            "pending": engine._pending,
        }
    )
    for managed in engine._managed:
        snapshot.add_array(f"param/{managed.name}", managed.param.data)
        snapshot.add_array(f"master/{managed.name}", managed.master.read_array())
        snapshot.add_array(f"m/{managed.name}", managed.moment1.read_array())
        snapshot.add_array(f"v/{managed.name}", managed.moment2.read_array())
        snapshot.add_array(
            f"fp16/{managed.name}",
            managed.fp16.read_array().view(np.uint16),
        )
    return snapshot


def restore_engine_state(snapshot: Snapshot, engine) -> int:
    """Restore a snapshot into a (freshly initialized) AngelModel."""
    names = snapshot.metadata["param_names"]
    current = [m.name for m in engine._managed]
    if names != current:
        raise CheckpointError("engine layout does not match the checkpoint")
    for managed in engine._managed:
        managed.param.data[...] = snapshot.arrays[f"param/{managed.name}"]
        managed.master.write_array(snapshot.arrays[f"master/{managed.name}"])
        managed.moment1.write_array(snapshot.arrays[f"m/{managed.name}"])
        managed.moment2.write_array(snapshot.arrays[f"v/{managed.name}"])
        managed.fp16.write_array(
            snapshot.arrays[f"fp16/{managed.name}"].view(np.float16)
        )
        index = managed.index
        engine.optimizer.master[index][...] = snapshot.arrays[f"master/{managed.name}"]
        engine.optimizer.m[index][...] = snapshot.arrays[f"m/{managed.name}"]
        engine.optimizer.v[index][...] = snapshot.arrays[f"v/{managed.name}"]
    engine.optimizer.t = int(snapshot.metadata["adam_t"])
    engine._iteration = int(snapshot.metadata["iteration"])
    engine._pending = int(snapshot.metadata["pending"])
    return int(snapshot.metadata["step"])
