"""Elastic re-sharding of ZeRO-partitioned optimizer state.

The paper's seamless-scalability requirement (Section 1): scaling a job
from K to N GPUs must not require re-configuring the parallel scheme.
Under ZeRO, each rank owns a contiguous 1/K slice of every flattened
state tensor; re-sharding concatenates the slices and re-splits them for
the new rank count. Elementwise optimizers (Adam) make this exact — no
state is recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CheckpointError, ShardingError


def split_even(array: np.ndarray, num_ranks: int) -> list[np.ndarray]:
    """Split a flat array into ``num_ranks`` shards, padding the tail.

    ZeRO pads the flattened state so every rank holds the same shard
    size; the pad is tracked and stripped on merge.
    """
    if array.ndim != 1:
        raise ShardingError("shards operate on flattened state")
    if num_ranks <= 0:
        raise ShardingError("num_ranks must be positive")
    shard_len = -(-array.size // num_ranks)  # ceil
    padded = np.zeros(shard_len * num_ranks, dtype=array.dtype)
    padded[:array.size] = array
    return [
        padded[rank * shard_len:(rank + 1) * shard_len].copy()
        for rank in range(num_ranks)
    ]


def merge_shards(shards: list[np.ndarray], true_size: int) -> np.ndarray:
    """Concatenate rank shards and strip the padding."""
    if not shards:
        raise ShardingError("no shards to merge")
    merged = np.concatenate(shards)
    if merged.size < true_size:
        raise CheckpointError(
            f"shards cover {merged.size} elements, expected {true_size}"
        )
    return merged[:true_size].copy()


@dataclass
class ShardedCheckpoint:
    """ZeRO-sharded state: per-rank slices of each named flat tensor."""

    num_ranks: int
    true_sizes: dict[str, int] = field(default_factory=dict)
    dtypes: dict[str, np.dtype] = field(default_factory=dict)
    #: name -> list of per-rank shards
    shards: dict[str, list[np.ndarray]] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    @staticmethod
    def from_full_state(
        state: dict[str, np.ndarray], num_ranks: int, metadata: dict | None = None
    ) -> "ShardedCheckpoint":
        """Shard a full (rank-agnostic) state dict across ``num_ranks``."""
        checkpoint = ShardedCheckpoint(num_ranks=num_ranks, metadata=metadata or {})
        for name, array in state.items():
            flat = np.asarray(array).reshape(-1)
            checkpoint.true_sizes[name] = flat.size
            checkpoint.dtypes[name] = flat.dtype
            checkpoint.shards[name] = split_even(flat, num_ranks)
        return checkpoint

    def rank_state(self, rank: int) -> dict[str, np.ndarray]:
        """The slice of every tensor owned by ``rank``."""
        if not 0 <= rank < self.num_ranks:
            raise ShardingError(f"rank {rank} outside [0, {self.num_ranks})")
        return {name: shards[rank] for name, shards in self.shards.items()}

    def to_full_state(self) -> dict[str, np.ndarray]:
        """Reassemble the rank-agnostic state dict."""
        return {
            name: merge_shards(self.shards[name], self.true_sizes[name]).astype(
                self.dtypes[name]
            )
            for name in self.shards
        }


def reshard(checkpoint: ShardedCheckpoint, new_num_ranks: int) -> ShardedCheckpoint:
    """Re-partition a K-rank checkpoint for ``new_num_ranks`` ranks.

    Exact for elementwise optimizer state: merge, then re-split. The
    resulting checkpoint restores training identically on the new
    cluster size — the paper's pause-and-rescale workflow.
    """
    if new_num_ranks <= 0:
        raise ShardingError("new_num_ranks must be positive")
    full = checkpoint.to_full_state()
    resharded = ShardedCheckpoint.from_full_state(
        full, new_num_ranks, metadata=dict(checkpoint.metadata)
    )
    # dtype/true-size bookkeeping must survive the round trip.
    resharded.true_sizes = dict(checkpoint.true_sizes)
    resharded.dtypes = dict(checkpoint.dtypes)
    return resharded
