"""Checkpointing, recovery and elastic re-sharding.

Section 3.1 of the paper motivates two operational requirements this
package serves:

- **Failure and recovery**: "pre-training tasks would encounter GPU
  failure with a high probability, and should be restarted after
  failure" — training state (FP32 master parameters, Adam moments, the
  FP16 buffers, step counters and data-stream position) round-trips
  through durable snapshots.
- **Seamless scalability**: "when users wish to tune the amount of
  resources for their tasks, there should be no need to re-configure
  their parallel schemes" — ZeRO-sharded state written by K ranks can be
  re-sharded and restored onto any other rank count.
"""

from repro.checkpoint.snapshot import (
    Snapshot,
    latest_good_snapshot,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    save_snapshot,
    snapshot_path,
)
from repro.checkpoint.trainer_state import (
    capture_engine_state,
    capture_training_state,
    restore_engine_state,
    restore_training_state,
)
from repro.checkpoint.reshard import ShardedCheckpoint, reshard

__all__ = [
    "Snapshot",
    "save_snapshot",
    "load_snapshot",
    "latest_good_snapshot",
    "list_snapshots",
    "prune_snapshots",
    "snapshot_path",
    "capture_training_state",
    "restore_training_state",
    "capture_engine_state",
    "restore_engine_state",
    "ShardedCheckpoint",
    "reshard",
]
