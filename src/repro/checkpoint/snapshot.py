"""Durable snapshots: atomic write, integrity check, versioning.

Snapshots are written with numpy's ``savez`` plus a small JSON manifest
carrying metadata and per-array checksums, staged through a temporary
file and renamed into place so a crash mid-save never corrupts the latest
good checkpoint (the failure model of Section 3.1).
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CheckpointError

FORMAT_VERSION = 1

#: The on-disk naming scheme every checkpoint writer in the repo uses.
SNAPSHOT_NAME = re.compile(r"^ckpt-(\d+)\.npz$")


@dataclass
class Snapshot:
    """An in-memory snapshot: named arrays plus JSON-safe metadata."""

    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    def add_array(self, name: str, array: np.ndarray) -> None:
        if name in self.arrays:
            raise CheckpointError(f"duplicate array name {name!r}")
        self.arrays[name] = np.asarray(array)

    def checksum(self, name: str) -> int:
        return zlib.crc32(np.ascontiguousarray(self.arrays[name]).tobytes())


def save_snapshot(snapshot: Snapshot, path: str) -> None:
    """Atomically persist ``snapshot`` to ``path`` (a .npz file)."""
    manifest = {
        "format_version": FORMAT_VERSION,
        "metadata": snapshot.metadata,
        "checksums": {
            name: snapshot.checksum(name) for name in snapshot.arrays
        },
    }
    payload = dict(snapshot.arrays)
    payload["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, staging = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
            # The bytes must be durable *before* the rename publishes
            # them, or a crash can leave a fully-renamed but empty file —
            # exactly the corruption the atomic-replace is meant to
            # prevent (Section 3.1's failure model).
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, path)
    except Exception:
        if os.path.exists(staging):
            os.unlink(staging)
        raise
    _fsync_directory(directory)


def _fsync_directory(directory: str) -> None:
    """Persist a rename by fsyncing its directory (no-op where unsupported)."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. Windows cannot open directories
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def snapshot_path(directory: str, step: int) -> str:
    """The canonical path of the checkpoint taken after ``step`` steps."""
    return os.path.join(directory, f"ckpt-{step:06d}.npz")


def list_snapshots(directory: str) -> list[tuple[int, str]]:
    """``(step, path)`` pairs of snapshots in ``directory``, newest first."""
    found = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        match = SNAPSHOT_NAME.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(found, reverse=True)


def prune_snapshots(directory: str, keep: int) -> list[str]:
    """Delete all but the ``keep`` newest snapshots; returns removed paths.

    A preempted fleet job checkpoints on every eviction, so an unlucky
    job could otherwise litter its workdir with one file per preemption.
    """
    if keep < 1:
        raise CheckpointError("must keep at least one snapshot")
    removed = []
    for _, path in list_snapshots(directory)[keep:]:
        os.unlink(path)
        removed.append(path)
    return removed


def latest_good_snapshot(directory: str) -> tuple[Snapshot, int] | None:
    """Newest snapshot whose checksums verify, or ``None`` if none does.

    Corrupt files (torn writes, truncation) are skipped, not fatal: the
    crash-consistency contract is that *some* older checkpoint always
    restores.
    """
    for step, path in list_snapshots(directory):
        try:
            return load_snapshot(path), step
        except CheckpointError:
            continue
    return None


def load_snapshot(path: str) -> Snapshot:
    """Load and verify a snapshot written by :func:`save_snapshot`."""
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint at {path!r}")
    try:
        with np.load(path) as data:
            if "__manifest__" not in data:
                raise CheckpointError(f"{path!r} is not a repro snapshot")
            manifest = json.loads(bytes(data["__manifest__"]).decode("utf-8"))
            if manifest.get("format_version") != FORMAT_VERSION:
                raise CheckpointError(
                    f"unsupported snapshot version {manifest.get('format_version')}"
                )
            snapshot = Snapshot(metadata=manifest["metadata"])
            for name in data.files:
                if name == "__manifest__":
                    continue
                snapshot.arrays[name] = data[name]
    except CheckpointError:
        raise
    except Exception as exc:  # zip/npy corruption surfaces in many shapes
        raise CheckpointError(f"failed to read snapshot {path!r}: {exc}") from exc
    for name, expected in manifest["checksums"].items():
        if name not in snapshot.arrays:
            raise CheckpointError(f"snapshot missing array {name!r}")
        actual = snapshot.checksum(name)
        if actual != expected:
            raise CheckpointError(
                f"checksum mismatch for {name!r}: snapshot is corrupt"
            )
    return snapshot
