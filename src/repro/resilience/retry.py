"""Retry with exponential backoff, jitter and a deadline.

The retry ladder of the fault model (docs/resilience.md): transient tier
I/O errors are absorbed here; permanent failures (``TierFailedError``,
``RankFailedError``) are *not* retried — they escalate to the degradation
and recovery layers above.

Jitter is drawn from a seeded RNG so chaos runs are bit-reproducible, and
``sleep`` is injectable so tests pay no wall-clock cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
import random

from repro.errors import ConfigurationError, RetryExhaustedError, TransientIOError


@dataclass
class RetryPolicy:
    """Bounded exponential backoff: ``base * multiplier**n``, jittered.

    ``run(fn)`` calls ``fn`` until it succeeds, a non-retryable error is
    raised, or the attempt/deadline budget is spent — then raises
    :class:`RetryExhaustedError` chaining the last failure.
    """

    max_attempts: int = 5
    base_delay: float = 0.0005
    multiplier: float = 2.0
    max_delay: float = 0.05
    jitter: float = 0.5
    deadline: float | None = None
    seed: int = 0
    retry_on: tuple = (TransientIOError,)
    sleep: object = time.sleep
    on_retry: object = None  # callable(attempt, exc, delay) or None

    #: Total retries performed over this policy's lifetime (observability).
    retries: int = field(default=0, init=False)
    _rng: random.Random = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ConfigurationError("delays and jitter must be >= 0")
        self._rng = random.Random(self.seed)

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        return raw * (1.0 + self.jitter * self._rng.random())

    def run(self, fn):
        """Call ``fn`` under this policy and return its result."""
        start = time.monotonic()
        attempt = 1
        while True:
            try:
                return fn()
            except self.retry_on as exc:
                if attempt >= self.max_attempts:
                    raise RetryExhaustedError(attempt, exc) from exc
                delay = self.backoff(attempt)
                if (
                    self.deadline is not None
                    and time.monotonic() - start + delay > self.deadline
                ):
                    raise RetryExhaustedError(attempt, exc) from exc
                self.retries += 1
                if self.on_retry is not None:
                    self.on_retry(attempt, exc, delay)
                if delay > 0:
                    self.sleep(delay)
                attempt += 1
