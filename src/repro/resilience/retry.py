"""Retry with exponential backoff, jitter and a deadline.

The retry ladder of the fault model (docs/resilience.md): transient tier
I/O errors are absorbed here; permanent failures (``TierFailedError``,
``RankFailedError``) are *not* retried — they escalate to the degradation
and recovery layers above.

Jitter is drawn from a seeded RNG so chaos runs are bit-reproducible, and
time comes from an injectable :class:`~repro.telemetry.clock.Clock` —
with a :class:`~repro.telemetry.clock.ManualClock` the backoff schedule
and deadline arithmetic are testable deterministically, without sleeping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, RetryExhaustedError, TransientIOError
from repro.telemetry.clock import WALL_CLOCK, Clock


@dataclass
class RetryPolicy:
    """Bounded exponential backoff: ``base * multiplier**n``, jittered.

    ``run(fn)`` calls ``fn`` until it succeeds, a non-retryable error is
    raised, or the attempt/deadline budget is spent — then raises
    :class:`RetryExhaustedError` chaining the last failure.
    """

    max_attempts: int = 5
    base_delay: float = 0.0005
    multiplier: float = 2.0
    max_delay: float = 0.05
    jitter: float = 0.5
    deadline: float | None = None
    seed: int = 0
    retry_on: tuple = (TransientIOError,)
    #: Time source for deadlines and backoff sleeps; a ManualClock makes
    #: both deterministic.
    clock: Clock = None
    #: Explicit sleep callable; overrides ``clock.sleep`` when given
    #: (legacy injection point, kept for compatibility).
    sleep: object = None
    on_retry: object = None  # callable(attempt, exc, delay) or None
    #: Optional repro.telemetry.Telemetry: every retry increments the
    #: ``retry.attempts`` counter and lands its backoff delay in the
    #: ``retry.backoff_seconds`` histogram.
    telemetry: object = None

    #: Total retries performed over this policy's lifetime (observability).
    retries: int = field(default=0, init=False)
    _rng: random.Random = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ConfigurationError("delays and jitter must be >= 0")
        if self.clock is None:
            self.clock = WALL_CLOCK
        if self.sleep is None:
            self.sleep = self.clock.sleep
        self._rng = random.Random(self.seed)

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        return raw * (1.0 + self.jitter * self._rng.random())

    def run(self, fn):
        """Call ``fn`` under this policy and return its result."""
        start = self.clock.monotonic()
        attempt = 1
        while True:
            try:
                return fn()
            except self.retry_on as exc:
                if attempt >= self.max_attempts:
                    raise RetryExhaustedError(attempt, exc) from exc
                delay = self.backoff(attempt)
                if (
                    self.deadline is not None
                    and self.clock.monotonic() - start + delay > self.deadline
                ):
                    raise RetryExhaustedError(attempt, exc) from exc
                self.retries += 1
                if self.telemetry is not None:
                    self.telemetry.counter("retry.attempts").inc()
                    self.telemetry.histogram("retry.backoff_seconds").observe(delay)
                    self.telemetry.instant("retry", error=type(exc).__name__)
                if self.on_retry is not None:
                    self.on_retry(attempt, exc, delay)
                if delay > 0:
                    self.sleep(delay)
                attempt += 1
