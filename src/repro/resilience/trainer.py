"""The supervised, self-healing training driver (Section 3.1 made real).

``ResilientTrainer`` wraps the functional engine's Figure-6 loop with the
fault-tolerance ladder the paper claims in production:

1. **retry** — transient tier I/O is absorbed inside the engine by its
   :class:`~repro.resilience.retry.RetryPolicy`;
2. **degrade** — a permanent SSD-tier death rebuilds the FP32 states on
   the surviving CPU tier (:meth:`AngelModel.degrade_tier`) and replays
   the interrupted step;
3. **recover** — a rank failure (or an exhausted retry budget) discards
   the engine, restores the latest *good* checkpoint — re-sharding the
   state when the rank count changed, via ``checkpoint.reshard`` — and
   replays from there.

Checkpoints are taken every ``checkpoint_every`` steps through the
crash-consistent ``checkpoint.snapshot`` path; every cure is counted in
:class:`~repro.metrics.FaultCounters` and published as a completion event
on a :class:`~repro.runtime.events.EventBus`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.checkpoint.reshard import ShardedCheckpoint, reshard
from repro.checkpoint.snapshot import (
    Snapshot,
    latest_good_snapshot,
    list_snapshots,
    save_snapshot,
    snapshot_path,
)
from repro.checkpoint.trainer_state import capture_engine_state, restore_engine_state
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    RankFailedError,
    RetryExhaustedError,
    TierFailedError,
)
from repro.hardware.device import DeviceKind
from repro.metrics import FaultCounters
from repro.resilience.retry import RetryPolicy
from repro.runtime.events import EventBus


@dataclass
class ChaosReport:
    """What a supervised run survived, and what it cost."""

    losses: list[float] = field(default_factory=list)
    steps_completed: int = 0
    step_attempts: int = 0
    counters: FaultCounters = field(default_factory=FaultCounters)
    recovery_steps: list[int] = field(default_factory=list)
    degraded: bool = False
    final_world_size: int = 1
    fault_log: list = field(default_factory=list)
    #: Watchdog alerts fired during the supervised run (repro.observe).
    alerts: list = field(default_factory=list)
    #: Advisory actions derived from sustained alerts — e.g. a retry
    #: storm or a saturated SSD edge recommending ``degrade_tier``. The
    #: supervisor never acts on these automatically.
    recommendations: list[str] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ConfigurationError("no steps completed")
        return self.losses[-1]


class ResilientTrainer:
    """Checkpoint, watch, degrade, restore, replay."""

    def __init__(
        self,
        engine_factory,
        checkpoint_dir: str,
        checkpoint_every: int = 10,
        fault_plan=None,
        counters: FaultCounters | None = None,
        bus: EventBus | None = None,
        retry_policy: RetryPolicy | None = None,
        world_size: int = 2,
        max_recoveries: int = 8,
        keep_checkpoints: int = 3,
        watchdog=None,
    ):
        if checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")
        if world_size < 1:
            raise ConfigurationError("world_size must be >= 1")
        #: ``engine_factory(use_ssd: bool) -> AngelModel`` builds a fresh
        #: engine; called again after every unrecoverable crash.
        self._factory = engine_factory
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.plan = fault_plan
        self.counters = counters if counters is not None else FaultCounters()
        self.bus = bus if bus is not None else EventBus()
        self._retry = retry_policy or RetryPolicy()
        self.world_size = world_size
        self.max_recoveries = max_recoveries
        self.keep_checkpoints = keep_checkpoints
        #: Optional repro.observe.Watchdog evaluated at every completed
        #: step; its alerts land in the ChaosReport, and sustained
        #: SSD-latency / retry-storm alerts surface a ``degrade_tier``
        #: recommendation (never an automatic action).
        self.watchdog = watchdog
        self._ssd_alive = True
        os.makedirs(checkpoint_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def save_checkpoint(self, engine, step: int) -> str:
        """Capture the engine's paged state and persist it atomically."""
        snapshot = self._retry.run(lambda: capture_engine_state(engine, step=step))
        snapshot.metadata["world_size"] = self.world_size
        path = snapshot_path(self.checkpoint_dir, step)
        save_snapshot(snapshot, path)
        self.counters.checkpoints_saved += 1
        # Event names carry the save sequence number, not the step — a
        # replayed step can checkpoint the same boundary twice, and events
        # are one-shot latches.
        self.bus.complete(
            f"resilience.checkpoint.{self.counters.checkpoints_saved}.step{step}"
        )
        self._prune_checkpoints()
        return path

    def _prune_checkpoints(self) -> None:
        for _, path in list_snapshots(self.checkpoint_dir)[self.keep_checkpoints:]:
            os.unlink(path)

    def latest_good_checkpoint(self) -> tuple[Snapshot, int]:
        """Newest checkpoint whose checksums verify; skips corrupt files."""
        found = latest_good_snapshot(self.checkpoint_dir)
        if found is None:
            raise CheckpointError(
                f"no restorable checkpoint under {self.checkpoint_dir!r}"
            )
        return found

    # ------------------------------------------------------------------
    # Recovery ladder
    # ------------------------------------------------------------------
    def _build(self):
        """Build a fresh engine, falling back to CPU-only if the SSD tier
        dies during construction (state registration does tier I/O)."""
        try:
            return self._factory(use_ssd=self._ssd_alive)
        except TierFailedError:
            self._ssd_alive = False
            self.counters.tier_deaths += 1
            return self._factory(use_ssd=False)

    def _degrade(self, engine) -> None:
        """Tier died: rebuild the FP32 states on the CPU tier."""
        self._ssd_alive = False
        self.counters.tier_deaths += 1
        engine.degrade_tier(DeviceKind.SSD, DeviceKind.CPU)
        self.counters.degradations += 1
        self.bus.complete(f"resilience.degrade.{self.counters.degradations}")

    def _reshard_snapshot(self, snapshot: Snapshot, old_ws: int, new_ws: int) -> None:
        """Round-trip the state through ZeRO re-sharding for ``new_ws`` ranks.

        Elementwise optimizer state makes this exact (checkpoint.reshard),
        so restoring on the shrunken cluster is bit-identical.
        """
        shapes = {name: array.shape for name, array in snapshot.arrays.items()}
        sharded = ShardedCheckpoint.from_full_state(snapshot.arrays, old_ws)
        full = reshard(sharded, new_ws).to_full_state()
        snapshot.arrays = {
            name: full[name].reshape(shapes[name]) for name in full
        }
        self.counters.reshards += 1

    def _recover(self, engine, shrink: bool = False):
        """Discard the engine, restore the latest good snapshot, replay.

        Returns ``(engine, step)`` — the fresh engine and the step to
        resume from.
        """
        self.counters.recoveries += 1
        if engine is not None:
            try:
                engine.close()
            except Exception:
                pass  # a dying engine must not block recovery
        snapshot, step = self.latest_good_checkpoint()
        self.counters.checkpoints_restored += 1
        if shrink and self.world_size > 1:
            old_ws = self.world_size
            self.world_size -= 1
            self._reshard_snapshot(snapshot, old_ws, self.world_size)
        engine = self._build()
        # The restore writes through the (possibly still-faulty) tier
        # backends; a full re-restore heals any torn/transient write.
        self._retry.run(lambda: restore_engine_state(snapshot, engine))
        self.bus.complete(f"resilience.recovery.{self.counters.recoveries}")
        return engine, step

    # ------------------------------------------------------------------
    # Health watching (repro.observe)
    # ------------------------------------------------------------------
    def _watch(self, engine, step: int, report: ChaosReport) -> None:
        """Run the watchdog at a step boundary; collect alerts + advice."""
        if self.watchdog is None:
            return
        from repro.observe.alerts import degrade_recommendation

        for alert in self.watchdog.observe_engine(engine, step=step):
            report.alerts.append(alert)
            recommendation = degrade_recommendation(alert)
            if recommendation and recommendation not in report.recommendations:
                report.recommendations.append(recommendation)

    # ------------------------------------------------------------------
    # Supervised loop
    # ------------------------------------------------------------------
    def train(self, batches) -> ChaosReport:
        """Run the Figure-6 loop over ``batches``, surviving the plan.

        ``batches`` must be indexable (a list), because recovery replays
        from the restored step.
        """
        batches = list(batches)
        report = ChaosReport(
            counters=self.counters, final_world_size=self.world_size
        )
        engine = self._build()
        step = 0
        # An initial checkpoint makes even a step-0 crash recoverable.
        self.save_checkpoint(engine, step)
        while step < len(batches):
            if self.plan is not None and self.plan.take_rank_failure(step):
                self.counters.rank_failures += 1
                self.bus.complete(
                    f"resilience.rank_failure.{self.counters.rank_failures}"
                )
                if self.counters.recoveries >= self.max_recoveries:
                    raise RankFailedError(step=step)
                engine, step = self._recover(engine, shrink=True)
                del report.losses[step:]
                report.recovery_steps.append(step)
                continue
            report.step_attempts += 1
            try:
                loss = engine(batches[step])
                engine.backward(loss)
                engine.step()
                report.losses.append(loss.item())
                step += 1
                self._watch(engine, step, report)
                if step % self.checkpoint_every == 0:
                    self.save_checkpoint(engine, step)
            except TierFailedError:
                self._degrade(engine)
                report.degraded = True
                continue  # replay the interrupted step on the CPU tier
            except (RetryExhaustedError, CheckpointError):
                if self.counters.recoveries >= self.max_recoveries:
                    raise
                engine, step = self._recover(engine)
                del report.losses[step:]
                report.recovery_steps.append(step)
        if self.plan is not None:
            self.counters.absorb_plan(self.plan)
        self.counters.retries += self._retry.retries
        report.steps_completed = step
        report.final_world_size = self.world_size
        self._final_engine = engine
        return report

    def close(self) -> None:
        engine = getattr(self, "_final_engine", None)
        if engine is not None:
            engine.close()
            self._final_engine = None
