"""Canned chaos scenarios: one knob-set, two runs, comparable losses.

``run_reference`` trains a tiny functional model fault-free;
``run_chaos`` trains the *same* model, seed and batches under a
:class:`~repro.resilience.faults.FaultPlan` supervised by
:class:`~repro.resilience.trainer.ResilientTrainer`. Because transient
faults are healed by full rewrites and degradation rebuilds exact state,
a transient-only chaos run matches the reference bit for bit; runs with
checkpoint recovery match within a small tolerance. The ``repro chaos``
CLI subcommand and the chaos tests are both thin wrappers over this
module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.angel import AngelConfig
from repro.fleet.factory import JobFactory, JobWorkload
from repro.metrics import FaultCounters
from repro.protocols import TelemetryLike
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.resilience.trainer import ChaosReport, ResilientTrainer
from repro.units import KiB, MiB


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos scenario: workload knobs plus the fault schedule."""

    steps: int = 16
    checkpoint_every: int = 4
    seed: int = 0
    layers: int = 2
    lr: float = 2e-3
    vocab_size: int = 32
    seq_len: int = 16
    batch_size: int = 8
    gpu_memory_bytes: int = 4 * MiB
    cpu_memory_bytes: int = 64 * MiB
    ssd_bytes: int = 32 * MiB
    page_bytes: int = 64 * KiB
    world_size: int = 2
    # Fault schedule (all off by default — the reference scenario).
    transient_read_rate: float = 0.0
    transient_write_rate: float = 0.0
    max_transients: int | None = None
    torn_write_rate: float = 0.0
    max_torn_writes: int | None = None
    latency_rate: float = 0.0
    latency_seconds: float = 0.0
    die_after_ops: int | None = None
    rank_failure_at_step: int | None = None
    # Harness resources (both optional). ``workdir`` is the checkpoint
    # directory (a fresh temp dir when omitted); ``telemetry`` the live
    # sink for fault counters and retry latencies. Explicit arguments to
    # ``run_chaos`` take precedence over these fields.
    workdir: str | None = None
    telemetry: "TelemetryLike | None" = None


def make_workload(config: ChaosConfig) -> JobWorkload:
    """The scenario's model/data recipe as a fleet ``JobWorkload``."""
    return JobWorkload(
        vocab_size=config.vocab_size,
        layers=config.layers,
        seq_len=config.seq_len,
        batch_size=config.batch_size,
        lr=config.lr,
        seed=config.seed,
    )


def make_batches(config: ChaosConfig) -> list:
    """The scenario's deterministic batch stream (shared by both runs)."""
    return JobFactory(make_workload(config)).batches(config.steps)


def make_fault_plan(config: ChaosConfig) -> FaultPlan:
    return FaultPlan(
        seed=config.seed,
        transient_read_rate=config.transient_read_rate,
        transient_write_rate=config.transient_write_rate,
        max_transients=config.max_transients,
        torn_write_rate=config.torn_write_rate,
        max_torn_writes=config.max_torn_writes,
        latency_rate=config.latency_rate,
        latency_seconds=config.latency_seconds,
        die_after_ops=config.die_after_ops,
        rank_failure_at_step=config.rank_failure_at_step,
    )


def engine_factory(config: ChaosConfig, plan: FaultPlan | None, policy: RetryPolicy | None):
    """``factory(use_ssd) -> AngelModel`` building a fresh engine+model.

    Engine construction is the shared :class:`repro.fleet.JobFactory`
    recipe, so the chaos harness, the fleet gateway and the CLI all
    rebuild identical engines from identical knobs.
    """
    job_factory = JobFactory(make_workload(config))

    def factory(use_ssd: bool = True):
        angel = AngelConfig(
            gpu_memory_bytes=config.gpu_memory_bytes,
            cpu_memory_bytes=config.cpu_memory_bytes,
            ssd_bytes=config.ssd_bytes if use_ssd else 0,
            page_bytes=config.page_bytes,
            fault_plan=plan,
            retry_policy=policy,
        )
        return job_factory.engine(angel)

    return factory


def run_reference(config: ChaosConfig) -> list[float]:
    """The fault-free run: same model, seed and batches, no supervision."""
    engine = engine_factory(config, plan=None, policy=None)(use_ssd=True)
    losses = []
    try:
        for batch in make_batches(config):
            loss = engine(batch)
            engine.backward(loss)
            engine.step()
            losses.append(loss.item())
    finally:
        engine.close()
    return losses


def run_chaos(
    config: ChaosConfig,
    checkpoint_dir: str | None = None,
    bus=None,
    counters: FaultCounters | None = None,
    telemetry=None,
    watchdog=None,
) -> ChaosReport:
    """Run the scenario under supervision; returns the ChaosReport.

    ``checkpoint_dir``/``telemetry`` resolve explicit argument first,
    then the matching ``config`` field (``workdir``/``telemetry``), then
    (for the directory) a fresh temp dir.

    When ``telemetry`` is given, fault counters and retry latencies flow
    through its metrics registry — ``telemetry.dump()`` afterwards is one
    unified view of ``faults.*``, ``retry.*`` and any span breakdowns —
    and a :class:`~repro.observe.watchdog.Watchdog` (built automatically
    unless one is passed) watches every step: its alerts land in
    ``report.alerts`` and sustained SSD-pressure/retry-storm alerts in
    ``report.recommendations``.
    """
    if checkpoint_dir is None:
        checkpoint_dir = config.workdir
    if checkpoint_dir is None:
        import tempfile

        checkpoint_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    if telemetry is None:
        telemetry = config.telemetry
    plan = make_fault_plan(config)
    policy = RetryPolicy(
        max_attempts=6, base_delay=1e-4, max_delay=2e-3, seed=config.seed,
        telemetry=telemetry,
    )
    if telemetry is not None and counters is None:
        counters = FaultCounters(registry=telemetry.registry)
    if telemetry is not None and watchdog is None:
        from repro.observe.watchdog import Watchdog

        watchdog = Watchdog(telemetry=telemetry, bus=bus)
    trainer = ResilientTrainer(
        engine_factory(config, plan, policy),
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=config.checkpoint_every,
        fault_plan=plan,
        counters=counters,
        bus=bus,
        retry_policy=policy,
        world_size=config.world_size,
        watchdog=watchdog,
    )
    try:
        report = trainer.train(make_batches(config))
    finally:
        trainer.close()
    report.fault_log = list(plan.log)
    return report
