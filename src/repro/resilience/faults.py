"""Deterministic fault injection for the hierarchical memory tiers.

Section 3.1 claims production fault tolerance, but ZeRO/PatrickStar-style
offload designs treat the CPU and SSD tiers as perfectly reliable — and
file I/O is exactly where real jobs fail. A :class:`FaultPlan` is a seeded
schedule of failures; a :class:`FaultyBackend` wraps any pool backend
(especially the file-backed SSD tier) and consults the plan on every read
and write, injecting:

- **transient I/O errors** (:class:`~repro.errors.TransientIOError`) that
  a retry will heal,
- **latency spikes** (a bounded sleep, no state change),
- **torn writes** (a prefix of the bytes lands, then the error) — the
  retried full rewrite heals them,
- **permanent tier death** (:class:`~repro.errors.TierFailedError` from
  then on) triggering degradation onto the surviving tiers,
- **rank failures** at a scheduled training step, consumed by the
  supervised driver (:class:`~repro.resilience.trainer.ResilientTrainer`).

Every decision is drawn from ``random.Random(seed)`` over a deterministic
operation sequence, so a chaos run is exactly reproducible.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, TierFailedError, TransientIOError


class FaultKind(enum.Enum):
    """What kind of failure an injected fault models."""

    TRANSIENT_READ = "transient_read"
    TRANSIENT_WRITE = "transient_write"
    LATENCY = "latency"
    TORN_WRITE = "torn_write"
    TIER_DEATH = "tier_death"
    RANK_FAILURE = "rank_failure"


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, for the chaos report's fault log."""

    op_index: int
    kind: FaultKind
    tier: str
    detail: str = ""


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of injected failures.

    Rates are per-I/O-operation probabilities; ``max_transients`` /
    ``max_torn_writes`` bound the budgets so a plan is quiet once spent.
    ``die_after_ops`` kills the tier permanently after that many I/O
    operations; ``rank_failure_at_step`` schedules one rank crash for the
    supervised driver to consume.
    """

    seed: int = 0
    transient_read_rate: float = 0.0
    transient_write_rate: float = 0.0
    max_transients: int | None = None
    torn_write_rate: float = 0.0
    max_torn_writes: int | None = None
    latency_rate: float = 0.0
    latency_seconds: float = 0.0
    die_after_ops: int | None = None
    rank_failure_at_step: int | None = None
    #: Injectable clock for latency spikes (tests pass a no-op).
    sleep: object = time.sleep

    log: list[FaultRecord] = field(default_factory=list, init=False)
    _rng: random.Random = field(default=None, init=False, repr=False)
    _ops: int = field(default=0, init=False)
    _transients: int = field(default=0, init=False)
    _torn: int = field(default=0, init=False)
    _dead_tiers: set = field(default_factory=set, init=False)
    _rank_failure_pending: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        for rate in (
            self.transient_read_rate,
            self.transient_write_rate,
            self.torn_write_rate,
            self.latency_rate,
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError("fault rates must be in [0, 1]")
        self._rng = random.Random(self.seed)
        self._rank_failure_pending = self.rank_failure_at_step is not None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def ops_seen(self) -> int:
        return self._ops

    def count(self, kind: FaultKind) -> int:
        return sum(1 for record in self.log if record.kind == kind)

    def tier_dead(self, tier: str) -> bool:
        return tier in self._dead_tiers

    # ------------------------------------------------------------------
    # Decisions (called by FaultyBackend / ResilientTrainer)
    # ------------------------------------------------------------------
    def _record(self, kind: FaultKind, tier: str, detail: str = "") -> None:
        self.log.append(FaultRecord(self._ops, kind, tier, detail))

    def _transient_budget_left(self) -> bool:
        return self.max_transients is None or self._transients < self.max_transients

    def on_io(self, tier: str, op: str, nbytes: int) -> str | None:
        """Consult the plan before one backend ``read``/``write``.

        Raises the injected error, sleeps the injected latency, or returns
        ``"torn"`` to tell the backend to tear the write.
        """
        self._ops += 1
        if self.die_after_ops is not None and self._ops > self.die_after_ops:
            if tier not in self._dead_tiers:
                self._dead_tiers.add(tier)
                self._record(FaultKind.TIER_DEATH, tier, f"after {self.die_after_ops} ops")
        if tier in self._dead_tiers:
            raise TierFailedError(tier)
        if self.latency_rate and self._rng.random() < self.latency_rate:
            self._record(FaultKind.LATENCY, tier, f"{self.latency_seconds}s")
            if self.latency_seconds > 0:
                self.sleep(self.latency_seconds)
        if op == "write":
            if (
                self.torn_write_rate
                and (self.max_torn_writes is None or self._torn < self.max_torn_writes)
                and self._rng.random() < self.torn_write_rate
            ):
                self._torn += 1
                self._record(FaultKind.TORN_WRITE, tier, f"{nbytes}B write torn")
                return "torn"
            if (
                self.transient_write_rate
                and self._transient_budget_left()
                and self._rng.random() < self.transient_write_rate
            ):
                self._transients += 1
                self._record(FaultKind.TRANSIENT_WRITE, tier)
                raise TransientIOError(f"injected transient write error on {tier}")
        elif op == "read":
            if (
                self.transient_read_rate
                and self._transient_budget_left()
                and self._rng.random() < self.transient_read_rate
            ):
                self._transients += 1
                self._record(FaultKind.TRANSIENT_READ, tier)
                raise TransientIOError(f"injected transient read error on {tier}")
        return None

    def kill_tier(self, tier: str) -> None:
        """Explicitly declare ``tier`` dead (scripted scenarios)."""
        if tier not in self._dead_tiers:
            self._dead_tiers.add(tier)
            self._record(FaultKind.TIER_DEATH, tier, "scripted")

    def take_rank_failure(self, step: int, rank: int = 0) -> bool:
        """True exactly once, when training reaches the scheduled step."""
        if self._rank_failure_pending and step == self.rank_failure_at_step:
            self._rank_failure_pending = False
            self._record(FaultKind.RANK_FAILURE, f"rank{rank}", f"step {step}")
            return True
        return False


class FaultyBackend:
    """Wraps a pool backend; every I/O consults the :class:`FaultPlan`.

    Speaks the buffer-protocol storage API
    (:class:`repro.protocols.PoolBackend`) and deliberately does NOT
    re-export the inner backend's ``view`` or ``descriptor``: hiding the
    zero-copy window and the cross-process address forces every page
    copy touching this tier through ``readinto``/``write_from`` — and
    therefore through the plan. (A view handed out once would let later
    copies bypass injection; a descriptor would let the out-of-process
    copy worker do the same.)

    A torn write lands a deterministic prefix of the bytes before raising
    :class:`~repro.errors.TransientIOError`, so the caller's retried full
    rewrite restores consistency — exactly the failure a page-granular
    mover must tolerate.
    """

    def __init__(self, inner, plan: FaultPlan, tier: str = "ssd"):
        self._inner = inner
        self._plan = plan
        self.tier = tier

    def readinto(self, index: int, offset: int, buf) -> int:
        self._plan.on_io(self.tier, "read", memoryview(buf).nbytes)
        return self._inner.readinto(index, offset, buf)

    def write_from(self, index: int, offset: int, buf) -> int:
        source = memoryview(buf).cast("B")
        action = self._plan.on_io(self.tier, "write", len(source))
        if action == "torn":
            torn_at = max(0, len(source) // 2)
            if torn_at:
                self._inner.write_from(index, offset, source[:torn_at])
            raise TransientIOError(
                f"injected torn write on {self.tier}: "
                f"{torn_at}/{len(source)} bytes landed"
            )
        return self._inner.write_from(index, offset, source)

    def close(self) -> None:
        self._inner.close()


def inject_faults(pool, plan: FaultPlan, tier: str | None = None) -> None:
    """Wrap ``pool``'s physical backend with a :class:`FaultyBackend`."""
    name = tier or pool.device_kind.name.lower()
    pool.wrap_backend(lambda inner: FaultyBackend(inner, plan, tier=name))
