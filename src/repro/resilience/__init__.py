"""Fault injection and self-healing training (Section 3.1's claims, live).

The passive half of fault tolerance — atomic snapshots, exact ZeRO
re-sharding — lives in ``repro.checkpoint``; this package is the active
half:

- :mod:`repro.resilience.faults` — seeded, deterministic fault injection
  into the tier backends (transient I/O, latency, torn writes, tier
  death) and scheduled rank failures;
- :mod:`repro.resilience.retry` — exponential backoff with jitter and a
  deadline, applied to page moves and FP32-state round trips;
- :mod:`repro.resilience.trainer` — the supervised driver: checkpoint
  every K steps, degrade on tier death, restore + replay on crashes;
- :mod:`repro.resilience.availability` — Young/Daly checkpoint-interval
  math and failure-timeline replay for the simulated (DES) path;
- :mod:`repro.resilience.chaos` — canned scenarios backing the
  ``repro chaos`` CLI subcommand and the chaos test suite.
"""

from repro.resilience.availability import (
    AvailabilityModel,
    FailureReplay,
    poisson_failure_steps,
    replay_with_failures,
)
from repro.resilience.chaos import (
    ChaosConfig,
    engine_factory,
    make_batches,
    make_fault_plan,
    run_chaos,
    run_reference,
)
from repro.resilience.faults import (
    FaultKind,
    FaultPlan,
    FaultRecord,
    FaultyBackend,
    inject_faults,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.trainer import ChaosReport, ResilientTrainer

__all__ = [
    "AvailabilityModel",
    "ChaosConfig",
    "ChaosReport",
    "FailureReplay",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "FaultyBackend",
    "ResilientTrainer",
    "RetryPolicy",
    "engine_factory",
    "inject_faults",
    "make_batches",
    "make_fault_plan",
    "poisson_failure_steps",
    "replay_with_failures",
    "run_chaos",
    "run_reference",
]
