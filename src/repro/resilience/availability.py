"""Goodput under failures: checkpoint-interval math for the DES path.

The discrete-event simulator predicts a failure-free iteration time; this
module layers Section 3.1's failure model on top of it analytically and by
deterministic replay:

- :meth:`AvailabilityModel.optimal_checkpoint_interval` is the classic
  Young/Daly first-order optimum ``sqrt(2 * MTBF * checkpoint_cost)``;
- :meth:`AvailabilityModel.efficiency` is the closed-form fraction of
  wall-clock spent on useful steps for a given interval;
- :func:`replay_with_failures` replays a training timeline step by step
  against scheduled rank failures — each failure rolls the job back to
  its last checkpoint and pays the restart cost — returning the observed
  wall clock, lost work and goodput.

Everything is deterministic: failures are either given explicitly or
drawn from a seeded exponential (Poisson-process) generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AvailabilityModel:
    """Failure-aware throughput arithmetic for one training job."""

    iteration_time: float
    checkpoint_time: float
    restart_time: float
    mtbf: float  # mean time between failures, seconds

    def __post_init__(self) -> None:
        if min(self.iteration_time, self.checkpoint_time, self.restart_time) < 0:
            raise ConfigurationError("times must be >= 0")
        if self.iteration_time == 0 or self.mtbf <= 0:
            raise ConfigurationError("iteration_time and mtbf must be > 0")

    def optimal_checkpoint_interval(self) -> float:
        """Young/Daly: the interval (seconds) minimizing expected waste."""
        return math.sqrt(2.0 * self.mtbf * self.checkpoint_time)

    def optimal_checkpoint_every(self) -> int:
        """The Young/Daly interval expressed in whole training steps."""
        return max(1, round(self.optimal_checkpoint_interval() / self.iteration_time))

    def efficiency(self, checkpoint_interval: float) -> float:
        """Expected useful fraction of wall clock at ``checkpoint_interval``.

        First-order model: each interval pays its checkpoint, and failures
        (rate ``1/mtbf``) each cost half an interval of rework plus the
        restart.
        """
        if checkpoint_interval <= 0:
            raise ConfigurationError("checkpoint_interval must be > 0")
        cycle = checkpoint_interval + self.checkpoint_time
        waste_per_failure = checkpoint_interval / 2.0 + self.restart_time
        expected_waste = cycle / self.mtbf * waste_per_failure
        return checkpoint_interval / (cycle + expected_waste)


@dataclass(frozen=True)
class FailureReplay:
    """Outcome of one deterministic failure-timeline replay."""

    wall_clock: float
    useful_time: float
    steps_replayed: int
    failures: int
    checkpoints: int

    @property
    def goodput(self) -> float:
        if self.wall_clock == 0:
            return 1.0
        return self.useful_time / self.wall_clock


def poisson_failure_steps(
    total_steps: int, iteration_time: float, mtbf: float, seed: int = 0
) -> list[int]:
    """Failure step indices drawn from a seeded Poisson process."""
    if total_steps < 1 or iteration_time <= 0 or mtbf <= 0:
        raise ConfigurationError("positive steps, iteration_time and mtbf required")
    rng = np.random.default_rng(seed)
    steps, clock = [], 0.0
    horizon = total_steps * iteration_time
    while True:
        clock += rng.exponential(mtbf)
        if clock >= horizon:
            return steps
        steps.append(int(clock / iteration_time))


def replay_with_failures(
    total_steps: int,
    iteration_time: float,
    checkpoint_every: int,
    checkpoint_time: float,
    restart_time: float,
    failure_steps: list[int],
) -> FailureReplay:
    """Replay a run where each failure rolls back to the last checkpoint.

    ``failure_steps`` are global-progress step indices at which a rank
    dies (each consumed once, in order); progress resumes from the last
    checkpointed step after paying ``restart_time``.
    """
    if total_steps < 1 or checkpoint_every < 1:
        raise ConfigurationError("total_steps and checkpoint_every must be >= 1")
    pending = sorted(failure_steps)
    wall = 0.0
    step = 0
    last_checkpoint = 0
    executed = 0
    failures = 0
    checkpoints = 0
    while step < total_steps:
        if pending and step == pending[0]:
            pending.pop(0)
            failures += 1
            wall += restart_time
            step = last_checkpoint
            continue
        wall += iteration_time
        executed += 1
        step += 1
        if step % checkpoint_every == 0:
            wall += checkpoint_time
            checkpoints += 1
            last_checkpoint = step
    return FailureReplay(
        wall_clock=wall,
        useful_time=total_steps * iteration_time,
        steps_replayed=executed - total_steps,
        failures=failures,
        checkpoints=checkpoints,
    )
