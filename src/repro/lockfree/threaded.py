"""Genuinely threaded lock-free training (Algorithm 2's structure).

The GPU loop (main thread) computes forward/backward against the buffered
parameters and deposits gradients; the updating thread sweeps the layers in
reverse order, draining accumulated gradients and refreshing the buffered
parameters, until training finishes and the buffers are clear. numpy
releases the GIL inside kernels, so the two threads genuinely overlap.

An optional per-sweep delay emulates the SSD I/O the updating thread pays
in production (fetch + offload of the FP32 states, lines 4 and 7).

Failure handling: an exception on the updating thread is captured and
re-raised on the main thread at the next step boundary (or at finish) —
it never dies silently, never hangs ``join()``, and never strands dirty
buffers. With ``fallback_to_sync=True`` the trainer instead degrades to
the synchronous update path on the main thread and finishes training,
recording the captured error in ``update_error``.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ConfigurationError
from repro.lockfree.buffers import GradientBuffers
from repro.lockfree.staleness import TrainLog
from repro.nn.functional import cross_entropy
from repro.nn.layers import Module
from repro.nn.optim import MixedPrecisionAdam


class LockFreeTrainer:
    """Two-thread lock-free trainer."""

    def __init__(
        self,
        model: Module,
        optimizer: MixedPrecisionAdam,
        mixed_precision: bool = True,
        sweep_delay: float = 0.0,
        fallback_to_sync: bool = False,
        telemetry=None,
    ):
        if sweep_delay < 0:
            raise ConfigurationError("sweep_delay must be >= 0")
        self.model = model
        self.optimizer = optimizer
        self.mixed_precision = mixed_precision
        self.sweep_delay = sweep_delay
        self.fallback_to_sync = fallback_to_sync
        if telemetry is None:
            from repro.telemetry.core import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        #: repro.telemetry.Telemetry: GPU-loop spans on the calling
        #: thread's track, sweep spans on the updating thread's track, and
        #: an ``updater.sweep_seconds`` latency histogram.
        self.telemetry = telemetry
        self._params = model.parameters()
        self._buffers = GradientBuffers(self._params)
        self._stop = threading.Event()
        #: Guards the sweep-progress counters below: they are written on
        #: the updating thread and read on the GPU loop every iteration
        #: (found by ``repro check --self``, rule SA001).
        self._progress_lock = threading.Lock()
        self._sweeps = 0
        #: Iterations whose gradients a completed sweep has folded in; the
        #: GPU loop publishes ``iterations - applied`` as the staleness-lag
        #: gauge the watchdog monitors.
        self._iterations_applied = 0
        self._lag_gauge = self.telemetry.gauge("updater.lag_iterations")
        #: The exception that killed the updating thread, if any.
        self.update_error: BaseException | None = None
        #: True once the trainer degraded to synchronous updates.
        self.fell_back = False

    # ------------------------------------------------------------------
    # Updating thread (Algorithm 2, lines 1-7)
    # ------------------------------------------------------------------
    def _update_loop(self) -> None:
        try:
            while not self._stop.is_set() or self._buffers.has_uncleared:
                if not self._buffers.has_uncleared:
                    time.sleep(1e-4)
                    continue
                self._sweep_once()
        except BaseException as exc:  # surface on the main thread
            self.update_error = exc

    def _sweep_once(self) -> None:
        """One update sweep over all layers (shared by both paths)."""
        telemetry = self.telemetry
        started = telemetry.clock.perf() if telemetry.enabled else 0.0
        # Bias correction advances once per sweep, before any layer
        # applies (Adam's t must be >= 1 when gradients are folded in).
        with telemetry.span(f"update_sweep/{self._sweeps}", track="updater"):
            self.optimizer.bump_step()
            did_work = False
            covered = 0
            for index in reversed(range(len(self._params))):
                grad, count = self._buffers.drain(index)
                if count == 0:
                    continue
                did_work = True
                covered = max(covered, count)
                refreshed = self.optimizer.apply_gradient(index, grad / count)
                self._params[index].data[...] = refreshed
            if did_work:
                with self._progress_lock:
                    self._sweeps += 1
                    self._iterations_applied += covered
                if self.sweep_delay:
                    time.sleep(self.sweep_delay)  # emulated SSD I/O
        if did_work and telemetry.enabled:
            telemetry.histogram("updater.sweep_seconds").observe(
                telemetry.clock.perf() - started
            )
            telemetry.counter("engine.update_sweeps").inc()

    # ------------------------------------------------------------------
    # Failure surfacing / degradation
    # ------------------------------------------------------------------
    def _check_updater(self) -> None:
        """Step-boundary check: degrade to sync updates, or re-raise."""
        if self.update_error is None or self.fell_back:
            return
        if self.fallback_to_sync:
            self.fell_back = True
            return
        raise self.update_error

    # ------------------------------------------------------------------
    # GPU loop (Algorithm 2, lines 17-24) — runs on the calling thread
    # ------------------------------------------------------------------
    def train(self, batches) -> TrainLog:
        log = TrainLog()
        self.update_error = None
        self.fell_back = False
        updater = threading.Thread(
            target=self._update_loop, daemon=True, name="updater"
        )
        updater.start()
        try:
            for batch in batches:
                logits = self.model(batch.inputs, self.mixed_precision)
                loss = cross_entropy(logits, batch.targets)
                self.model.zero_grad()
                loss.backward()
                self._buffers.accumulate_all(self._params)
                log.losses.append(loss.item())
                log.iterations += 1
                # How far the buffered parameters lag the deposited
                # gradients, in iterations (the watchdog's staleness feed).
                self._lag_gauge.set(log.iterations - self._iterations_applied)
                self._check_updater()
                if self.fell_back and self._buffers.has_uncleared:
                    self._sweep_once()
        finally:
            self._stop.set()
            updater.join(timeout=30.0)
            # A crashed updater exits with buffers still dirty; a healthy
            # one drains them before returning (its loop condition).
            self._check_updater()
            if self.fell_back and self._buffers.has_uncleared:
                self._sweep_once()
        log.sweeps = self._sweeps
        return log
