"""The CPU-side buffers of Algorithm 2.

``g'16``: per-parameter accumulated FP16 gradients, deposited by the GPU
and cleared by the updating thread after each sweep (lines 12, 15).
``p'16`` is represented by the model parameters' own ``data`` arrays — the
GPU reads buffered parameters directly, and the updater overwrites them
with the FP16-rounded masters (line 13).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import GradientError
from repro.nn.tensor import Tensor


class GradientBuffers:
    """Accumulated-gradient buffers with per-parameter locks."""

    def __init__(self, params: list[Tensor]):
        self._params = list(params)
        self._buffers = [np.zeros_like(p.data) for p in self._params]
        self._locks = [threading.Lock() for _ in self._params]
        self._pending = [0] * len(self._params)

    def __len__(self) -> int:
        return len(self._buffers)

    def accumulate(self, index: int, grad: np.ndarray) -> None:
        """Buffering thread, line 15: ``g'16 <- g'16 + g16``."""
        if grad.shape != self._buffers[index].shape:
            raise GradientError(
                f"gradient shape {grad.shape} does not match buffer "
                f"{self._buffers[index].shape}"
            )
        with self._locks[index]:
            # FP16 rounding on the accumulated value mirrors the buffer's
            # half-precision storage.
            acc = self._buffers[index] + grad
            self._buffers[index][...] = acc.astype(np.float16).astype(np.float32)
            self._pending[index] += 1

    def accumulate_all(self, params: list[Tensor]) -> None:
        """Deposit every parameter's ``.grad`` (the GPU's offload step)."""
        for index, param in enumerate(params):
            if param.grad is not None:
                self.accumulate(index, param.grad)

    def drain(self, index: int) -> tuple[np.ndarray, int]:
        """Updating thread, lines 5+12: take the accumulated gradient and
        clear the buffer. Returns (gradient copy, iterations folded in)."""
        with self._locks[index]:
            grad = self._buffers[index].copy()
            count = self._pending[index]
            self._buffers[index][...] = 0.0
            self._pending[index] = 0
        return grad, count

    def pending(self, index: int) -> int:
        with self._locks[index]:
            return self._pending[index]

    @property
    def has_uncleared(self) -> bool:
        """Algorithm 2 line 2's loop condition."""
        return any(self.pending(i) > 0 for i in range(len(self._buffers)))
