"""Lock-Free Updating Mechanism (Section 4.3, Algorithm 2).

Two CPU-side FP16 buffers (parameters and accumulated gradients) decouple
GPU computation from the SSD-bound optimizer path. The GPU always reads the
buffered parameters and deposits gradients; a buffering thread accumulates
them; an updating thread sweeps the layers, folding whatever gradients have
accumulated into each FP32 update and refreshing the buffered parameters.

Two implementations are provided:

- :class:`StalenessLoop` — a deterministic, single-threaded execution of
  the same semantics with a fixed update interval (staleness ``k``);
  ``k = 1`` is exactly synchronous training. Used by the Table 6
  convergence experiment and the property tests.
- :class:`LockFreeTrainer` — a genuinely threaded updating/buffering
  implementation matching Algorithm 2's concurrency structure.
"""

from repro.lockfree.buffers import GradientBuffers
from repro.lockfree.queues import WorkQueue
from repro.lockfree.staleness import StalenessLoop, TrainLog
from repro.lockfree.threaded import LockFreeTrainer

__all__ = [
    "GradientBuffers",
    "StalenessLoop",
    "TrainLog",
    "LockFreeTrainer",
    "WorkQueue",
]
