"""Bounded, closeable work queues for the pipelined runtime.

The prefetch worker and the SSD writeback queue (see
:mod:`repro.runtime.pipeline`) both need the same primitive: a FIFO that
a producer thread fills and one consumer thread drains, with

- a **bound** so a slow consumer applies backpressure instead of letting
  unbounded FP32-state copies pile up in host memory;
- **keyed completion tracking** so the producer can wait for *one*
  item's effects (read-your-writes on a single parameter's states)
  without draining the whole queue;
- **close/abort** semantics that never strand a waiter: closing wakes
  every blocked ``get``; aborting drops queued work and releases every
  ``wait_key`` immediately (used when a tier dies and the queued writes
  can no longer succeed);
- **bounded waits**: every blocking call accepts a ``timeout`` and
  raises :class:`TimeoutError` instead of hanging forever on a producer
  or consumer that died without closing the queue.

All state transitions happen under one condition variable, so the class
passes the repo's own concurrency lint (``repro check --self``).
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import ConfigurationError, QueueClosedError


def _await(cond: threading.Condition, predicate, timeout, what: str) -> None:
    """Wait (under ``cond``) until ``predicate()``; bounded by ``timeout``.

    A producer or consumer thread that died without closing the queue
    used to strand its peers forever; every blocking wait now takes an
    optional ``timeout`` in seconds and raises :class:`TimeoutError`
    instead of hanging, keeping the caller's thread usable to report or
    recover.
    """
    if timeout is not None and timeout < 0:
        raise ConfigurationError("timeout must be >= 0 seconds")
    if not cond.wait_for(predicate, timeout):
        raise TimeoutError(f"timed out after {timeout}s waiting for {what}")


class WorkQueue:
    """Bounded FIFO with per-key pending counts.

    An item is *pending* from ``put`` until the consumer calls
    ``task_done`` for it — so ``wait_key``/``wait_idle`` cover work that
    has been dequeued but is still executing, not just queued items.
    """

    def __init__(self, maxsize: int = 0):
        if maxsize < 0:
            raise ConfigurationError("maxsize must be >= 0 (0 = unbounded)")
        self._maxsize = maxsize
        self._cond = threading.Condition()
        self._items: deque = deque()
        self._pending: dict = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def put(self, key, item, timeout: float | None = None) -> None:
        """Enqueue ``item`` under ``key``; blocks while the queue is full.

        Raises :class:`TimeoutError` if the queue stays full past
        ``timeout`` seconds (a dead consumer), and
        :class:`~repro.errors.QueueClosedError` once closed.
        """
        with self._cond:
            _await(
                self._cond,
                lambda: (
                    not self._maxsize
                    or len(self._items) < self._maxsize
                    or self._closed
                ),
                timeout,
                "queue capacity",
            )
            if self._closed:
                raise QueueClosedError("queue is closed")
            self._items.append((key, item))
            self._pending[key] = self._pending.get(key, 0) + 1
            self._cond.notify_all()

    def wait_key(self, key, timeout: float | None = None) -> None:
        """Block until no queued or in-flight item carries ``key``.

        Raises :class:`TimeoutError` after ``timeout`` seconds — a
        consumer that died without ``task_done`` must not hang callers.
        """
        with self._cond:
            _await(
                self._cond,
                lambda: self._pending.get(key, 0) <= 0,
                timeout,
                f"completion of {key!r}",
            )

    def wait_idle(self, timeout: float | None = None) -> None:
        """Block until every item ever queued has been ``task_done``-ed.

        Raises :class:`TimeoutError` after ``timeout`` seconds instead of
        hanging on a dead consumer.
        """
        with self._cond:
            _await(
                self._cond,
                lambda: not self._pending,
                timeout,
                "queue to go idle",
            )

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def get(self):
        """Dequeue ``(key, item)``; ``None`` once closed and drained."""
        with self._cond:
            while not self._items and not self._closed:
                self._cond.wait()
            if not self._items:
                return None
            entry = self._items.popleft()
            self._cond.notify_all()
            return entry

    def task_done(self, key) -> None:
        """Mark one dequeued item of ``key`` complete (or failed)."""
        with self._cond:
            left = self._pending.get(key, 0) - 1
            if left < 0:
                raise ConfigurationError(f"task_done without a put for {key!r}")
            if left:
                self._pending[key] = left
            else:
                self._pending.pop(key, None)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting work; blocked getters drain then receive None."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def abort(self) -> list:
        """Drop queued (not yet dequeued) items; returns what was dropped.

        In-flight pending counts stay until their ``task_done`` — callers
        that must also outlast the in-flight item follow up with
        ``wait_idle``.
        """
        with self._cond:
            dropped = list(self._items)
            self._items.clear()
            for key, _ in dropped:
                left = self._pending.get(key, 0) - 1
                if left > 0:
                    self._pending[key] = left
                else:
                    self._pending.pop(key, None)
            self._cond.notify_all()
            return dropped

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)
