"""Deterministic execution of the lock-free semantics.

When SSD I/O bounds the updating thread, the GPU runs ``k`` iterations per
update sweep; every sweep folds the ``k`` accumulated gradients into one
FP32 Adam step and refreshes the FP16 buffered parameters. This class
replays exactly that interleaving deterministically, so the Table 6
convergence comparison (lock-free vs synchronous, same data and seeds) is
reproducible. ``update_interval = 1`` is synchronous training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.lockfree.buffers import GradientBuffers
from repro.nn.functional import cross_entropy
from repro.nn.layers import Module
from repro.nn.optim import MixedPrecisionAdam


@dataclass
class TrainLog:
    """Loss trajectory of one training run."""

    losses: list[float] = field(default_factory=list)
    sweeps: int = 0
    iterations: int = 0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ConfigurationError("no iterations were run")
        tail = self.losses[-max(1, len(self.losses) // 10):]
        return float(np.mean(tail))

    @property
    def first_loss(self) -> float:
        if not self.losses:
            raise ConfigurationError("no iterations were run")
        head = self.losses[:max(1, len(self.losses) // 10)]
        return float(np.mean(head))


class StalenessLoop:
    """Single-threaded lock-free training with a fixed staleness."""

    def __init__(
        self,
        model: Module,
        optimizer: MixedPrecisionAdam,
        update_interval: int = 1,
        mixed_precision: bool = True,
        grad_scale_by_interval: bool = True,
    ):
        if update_interval < 1:
            raise ConfigurationError("update_interval must be >= 1")
        self.model = model
        self.optimizer = optimizer
        self.update_interval = update_interval
        self.mixed_precision = mixed_precision
        # Averaging the accumulated gradient keeps the effective step size
        # comparable across staleness levels (the accumulated gradient of k
        # micro-steps is ~k times larger).
        self.grad_scale_by_interval = grad_scale_by_interval
        self._params = model.parameters()
        self._buffers = GradientBuffers(self._params)

    def _sweep(self) -> None:
        """One updating-thread pass over the layers (Algorithm 2, 2-7)."""
        self.optimizer.bump_step()
        for index in reversed(range(len(self._params))):
            grad, count = self._buffers.drain(index)
            if count == 0:
                continue
            if self.grad_scale_by_interval:
                grad /= count
            refreshed = self.optimizer.apply_gradient(index, grad)
            # Line 13: refresh the buffered FP16 parameters the GPU reads.
            self._params[index].data[...] = refreshed

    def train(self, batches) -> TrainLog:
        """Run the loop over ``batches`` of (inputs, targets)."""
        log = TrainLog()
        pending = 0
        for batch in batches:
            logits = self.model(batch.inputs, self.mixed_precision)
            loss = cross_entropy(logits, batch.targets)
            self.model.zero_grad()
            loss.backward()
            # GPU offload (line 24) + buffering thread accumulate (line 15).
            self._buffers.accumulate_all(self._params)
            log.losses.append(loss.item())
            log.iterations += 1
            pending += 1
            if pending >= self.update_interval:
                self._sweep()
                log.sweeps += 1
                pending = 0
        if self._buffers.has_uncleared:
            self._sweep()
            log.sweeps += 1
        return log
