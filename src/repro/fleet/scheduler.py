"""Fair-share packing of jobs onto simulated hardware nodes.

The scheduler prices every placement with the DES cost model
(:class:`repro.tracer.costmodel.CostModel` over Table-3 A100 servers): a
job's *virtual* step time is the analytic step of its nominal Table-4
model, and its memory footprint is the page count its stand-in engine
will actually pin (:meth:`repro.fleet.factory.JobFactory.page_footprint`).
Ranking is deficit-based fair share: priority first, then the tenant that
has consumed the least virtual service, then FIFO — so a starved tenant's
next job outranks a dominant tenant's at equal priority. Placement is
first-fit against each node's shared :class:`~repro.memory.PageQuota`
ledger; when nothing fits, a higher-priority job may evict exactly one
lower-priority victim (checkpointed, never killed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.factory import JobFactory
from repro.fleet.jobs import JobRecord, JobSpec
from repro.memory.allocator import PageQuota


@dataclass(frozen=True)
class PlacementEstimate:
    """What one placement costs: virtual step seconds + pinned pages."""

    step_seconds: float
    pages: int


@dataclass
class FleetNode:
    """One simulated machine: a page capacity governed by a shared ledger."""

    name: str
    quota: PageQuota
    capacity_pages: int
    running: dict[int, JobRecord] = field(default_factory=dict)

    @property
    def free_pages(self) -> int:
        return self.capacity_pages - self.quota.used()


class FairShareScheduler:
    """Deficit fair-share ranking + DES-priced first-fit placement."""

    def __init__(
        self,
        nodes: list[FleetNode],
        cost_model,
        page_bytes: int,
        est_seq_len: int = 256,
        est_micro_batch: int = 1,
    ):
        self.nodes = nodes
        self.cost_model = cost_model
        self.page_bytes = page_bytes
        self.est_seq_len = est_seq_len
        self.est_micro_batch = est_micro_batch
        #: Virtual compute seconds delivered per tenant — the fair-share
        #: deficit counter and the bench's fairness numerator.
        self.tenant_service: dict[str, float] = {}
        self._step_cache: dict[str, float] = {}
        self._pages_cache: dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------
    def virtual_step_seconds(self, model_name: str) -> float:
        """Analytic step of the nominal model (fwd + bwd + CPU Adam)."""
        if model_name not in self._step_cache:
            from repro.models.zoo import get_model

            spec = get_model(model_name).build(
                self.est_micro_batch, self.est_seq_len
            )
            cost = self.cost_model
            fwd = sum(
                cost.forward_time(layer, self.est_micro_batch, self.est_seq_len)
                for layer in spec.layers
            )
            bwd = sum(
                cost.backward_time(layer, self.est_micro_batch, self.est_seq_len)
                for layer in spec.layers
            )
            update = cost.cpu_update_time(spec.param_count)
            self._step_cache[model_name] = fwd + bwd + update
        return self._step_cache[model_name]

    def estimate(self, spec: JobSpec) -> PlacementEstimate:
        key = (spec.workload,)
        if key not in self._pages_cache:
            self._pages_cache[key] = JobFactory(spec.workload).page_footprint(
                self.page_bytes
            )
        return PlacementEstimate(
            step_seconds=self.virtual_step_seconds(spec.model_name),
            pages=self._pages_cache[key],
        )

    # ------------------------------------------------------------------
    # Fair-share ranking
    # ------------------------------------------------------------------
    def rank(self, pending: list[JobRecord]) -> list[JobRecord]:
        """Priority desc, then least-served tenant, then FIFO."""
        return sorted(
            pending,
            key=lambda r: (
                -r.spec.priority,
                self.tenant_service.get(r.spec.tenant, 0.0),
                r.spec.submit_time,
                r.spec.job_id,
            ),
        )

    def credit_service(self, tenant: str, seconds: float) -> None:
        self.tenant_service[tenant] = (
            self.tenant_service.get(tenant, 0.0) + seconds
        )

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def find_placement(self, record: JobRecord) -> FleetNode | None:
        """First node with page room and tenant headroom for the job."""
        pages = self.estimate(record.spec).pages
        for node in self.nodes:
            if node.free_pages >= pages and (
                node.quota.headroom(record.spec.tenant) >= pages
            ):
                return node
        return None

    def find_victim(
        self, record: JobRecord
    ) -> tuple[FleetNode, JobRecord] | None:
        """One lower-priority running job whose eviction makes room.

        Victims are considered lowest priority first, then the tenant
        holding the largest service share, then youngest submission —
        deterministic, so the bench reports identical victims run to run.
        """
        pages = self.estimate(record.spec).pages
        tenant = record.spec.tenant
        candidates: list[tuple[tuple, FleetNode, JobRecord]] = []
        for node in self.nodes:
            for victim in node.running.values():
                if victim.spec.priority >= record.spec.priority:
                    continue
                freed = victim.pages
                if node.free_pages + freed < pages:
                    continue
                headroom = node.quota.headroom(tenant)
                if victim.spec.tenant == tenant:
                    headroom += freed
                else:
                    # Pool-level headroom grows either way; per-tenant
                    # caps only relax when the victim shares the tenant.
                    headroom = min(headroom + freed, self._tenant_room(node, tenant))
                if headroom < pages:
                    continue
                rank_key = (
                    victim.spec.priority,
                    -self.tenant_service.get(victim.spec.tenant, 0.0),
                    -victim.spec.submit_time,
                    -victim.spec.job_id,
                )
                candidates.append((rank_key, node, victim))
        if not candidates:
            return None
        candidates.sort(key=lambda item: item[0])
        _, node, victim = candidates[0]
        return node, victim

    def _tenant_room(self, node: FleetNode, tenant: str) -> int:
        limit = node.quota.quota_of(tenant)
        if limit is None:
            return 2**62
        return limit - node.quota.used(tenant)

    # ------------------------------------------------------------------
    # Fairness accounting (the bench metric)
    # ------------------------------------------------------------------
    def fairness(self) -> dict:
        """Per-tenant virtual service and the max/min share ratio."""
        shares = {
            tenant: round(seconds, 6)
            for tenant, seconds in sorted(self.tenant_service.items())
        }
        positive = [s for s in shares.values() if s > 0]
        ratio = None
        if positive:
            ratio = round(max(positive) / min(positive), 6)
        return {"per_tenant_service_seconds": shares, "max_min_ratio": ratio}


__all__ = [
    "FairShareScheduler",
    "FleetNode",
    "PlacementEstimate",
]
