"""Multi-tenant training control plane (the "economical" half of §2).

Angel-PTM's economic argument is that many teams share one fleet:
thousands of concurrent training and fine-tuning jobs packed onto a
fixed machine pool. This package reproduces that control plane at
laptop scale:

- :mod:`repro.fleet.traffic` — a deterministic, seedable stream of job
  submissions (mixed nominal model sizes, priorities, tenants);
- :mod:`repro.fleet.factory` — one :class:`JobFactory` recipe for every
  engine the repo builds (gateway, chaos, bench, CLI, cluster);
- :mod:`repro.fleet.scheduler` — deficit fair-share ranking and
  DES-cost-model-priced first-fit packing with per-tenant page quotas;
- :mod:`repro.fleet.gateway` — the virtual-time event loop: admission,
  placement, checkpointed preemption, bit-identical resume, fleet-wide
  watchdog rollup;
- :mod:`repro.fleet.bench` — ``repro fleet bench`` → ``BENCH_fleet.json``
  (jobs/hour, p99 queue latency, preemptions, fairness).
"""

from repro.fleet.bench import run_fleet_bench, save_fleet_bench
from repro.fleet.factory import JobFactory, JobWorkload
from repro.fleet.gateway import FleetConfig, FleetGateway, FleetReport
from repro.fleet.jobs import JobRecord, JobSpec, JobState
from repro.fleet.scheduler import FairShareScheduler, FleetNode
from repro.fleet.traffic import TrafficConfig, generate_jobs

__all__ = [
    "FairShareScheduler",
    "FleetConfig",
    "FleetGateway",
    "FleetNode",
    "FleetReport",
    "JobFactory",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobWorkload",
    "TrafficConfig",
    "generate_jobs",
    "run_fleet_bench",
    "save_fleet_bench",
]
