"""Deterministic, seedable job-traffic generation.

Stands in for Angel-PTM's production reality — "thousands of concurrent
training jobs" submitted by many teams (Section 2) — with a Poisson-ish
arrival process over a small tenant set, mixed nominal model sizes and
mixed priorities. Everything is drawn from one
``numpy.random.default_rng(seed)``: the same seed yields the same job
stream, which is what makes ``repro fleet bench`` reproducible down to
the admission order and the preemption victims.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.fleet.factory import JobWorkload
from repro.fleet.jobs import JobSpec


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of the synthetic submission stream."""

    seed: int = 7
    num_jobs: int = 12
    tenants: tuple[str, ...] = ("ads", "nlp", "vision")
    #: Mean of the exponential inter-arrival gap, in virtual seconds.
    #: Deliberately shorter than a nominal job's runtime (≈14s for the
    #: smallest draw) so a backlog forms and preemption gets exercised.
    mean_interarrival: float = 6.0
    min_steps: int = 4
    max_steps: int = 8
    #: Nominal Table-4 models jobs stand in for, with draw weights —
    #: mixed sizes are what make packing decisions non-trivial.
    model_names: tuple[str, ...] = ("gpt3-1.7b", "t5-1.4b", "gpt3-13b")
    model_weights: tuple[float, ...] = (0.5, 0.3, 0.2)
    #: Priority classes with draw weights; higher value preempts lower.
    priorities: tuple[int, ...] = (0, 1, 2)
    priority_weights: tuple[float, ...] = (0.5, 0.3, 0.2)
    #: Depth choices for the tiny stand-in engine (real page pressure).
    layer_choices: tuple[int, ...] = (1, 2)

    def __post_init__(self) -> None:
        if self.num_jobs <= 0:
            raise ConfigurationError("num_jobs must be positive")
        if self.mean_interarrival <= 0:
            raise ConfigurationError("mean_interarrival must be positive")
        if len(self.model_names) != len(self.model_weights):
            raise ConfigurationError("one weight per model name required")
        if len(self.priorities) != len(self.priority_weights):
            raise ConfigurationError("one weight per priority class required")


def generate_jobs(config: TrafficConfig) -> list[JobSpec]:
    """The submission stream: sorted by ``submit_time``, fully seeded."""
    rng = np.random.default_rng(config.seed)
    model_p = np.asarray(config.model_weights, dtype=float)
    model_p = model_p / model_p.sum()
    prio_p = np.asarray(config.priority_weights, dtype=float)
    prio_p = prio_p / prio_p.sum()
    jobs: list[JobSpec] = []
    now = 0.0
    for job_id in range(config.num_jobs):
        now += float(rng.exponential(config.mean_interarrival))
        tenant = config.tenants[int(rng.integers(len(config.tenants)))]
        priority = int(np.asarray(config.priorities)[
            int(rng.choice(len(config.priorities), p=prio_p))
        ])
        steps = int(rng.integers(config.min_steps, config.max_steps + 1))
        layers = int(np.asarray(config.layer_choices)[
            int(rng.integers(len(config.layer_choices)))
        ])
        model_name = config.model_names[
            int(rng.choice(len(config.model_names), p=model_p))
        ]
        workload = replace(
            JobWorkload(), layers=layers, seed=config.seed * 1000 + job_id
        )
        jobs.append(
            JobSpec(
                job_id=job_id,
                tenant=tenant,
                priority=priority,
                submit_time=round(now, 6),
                steps=steps,
                workload=workload,
                model_name=model_name,
            )
        )
    return jobs


__all__ = ["TrafficConfig", "generate_jobs"]
