"""Job specifications and lifecycle records for the fleet control plane.

A :class:`JobSpec` is what a tenant submits: immutable intent (who, what
model, how many steps, how urgent). A :class:`JobRecord` is what the
gateway tracks: queueing, placement, executed steps, losses, preemption
history. Splitting the two keeps the deterministic traffic stream frozen
while the control plane mutates freely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.fleet.factory import JobWorkload


class JobState(str, enum.Enum):
    """Lifecycle of a job inside the gateway."""

    PENDING = "pending"        # admitted, waiting for a placement
    RUNNING = "running"        # engine live on a node
    PREEMPTED = "preempted"    # checkpointed and evicted; back in queue
    COMPLETED = "completed"    # all steps executed
    FAILED = "failed"          # unplaceable (exceeds every node/quota)


@dataclass(frozen=True)
class JobSpec:
    """One submitted training job (immutable tenant intent)."""

    job_id: int
    tenant: str
    #: Higher is more urgent; a higher-priority pending job may preempt a
    #: lower-priority running one.
    priority: int
    #: Virtual submission time, seconds since the bench epoch.
    submit_time: float
    steps: int
    #: The tiny stand-in engine actually trained (provides real numerics,
    #: checkpoints and page pressure at laptop scale).
    workload: JobWorkload
    #: Nominal Table-4 model this job stands in for; the DES cost model
    #: prices a virtual step of *this* model for scheduling decisions.
    model_name: str = "gpt3-1.7b"


@dataclass
class JobRecord:
    """Mutable control-plane state for one admitted job."""

    spec: JobSpec
    state: JobState = JobState.PENDING
    node: str | None = None
    steps_done: int = 0
    #: Virtual time the job first started computing (None while queued).
    first_start: float | None = None
    finish_time: float | None = None
    #: Virtual time of the latest (re-)enqueue, for preemption grace.
    enqueued_at: float = 0.0
    preemptions: int = 0
    resumes: int = 0
    #: Virtual compute seconds charged to the tenant (completed quanta).
    service_seconds: float = 0.0
    #: Virtual seconds of in-flight quanta lost to preemption.
    lost_seconds: float = 0.0
    #: Pages actually charged against the node quota while placed.
    pages: int = 0
    losses: list[float] = field(default_factory=list)
    #: Bumped on every preemption so stale completion events are ignored.
    epoch: int = 0

    @property
    def queue_latency(self) -> float | None:
        """Admission-to-first-compute wait (the p99 the bench reports)."""
        if self.first_start is None:
            return None
        return self.first_start - self.spec.submit_time

    @property
    def remaining_steps(self) -> int:
        return self.spec.steps - self.steps_done

    def to_dict(self) -> dict:
        return {
            "job_id": self.spec.job_id,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "model": self.spec.model_name,
            "state": self.state.value,
            "submit_time": self.spec.submit_time,
            "first_start": self.first_start,
            "finish_time": self.finish_time,
            "queue_latency_seconds": self.queue_latency,
            "steps": self.spec.steps,
            "steps_done": self.steps_done,
            "preemptions": self.preemptions,
            "resumes": self.resumes,
            "service_seconds": self.service_seconds,
            "lost_seconds": self.lost_seconds,
            "pages": self.pages,
            "final_loss": self.losses[-1] if self.losses else None,
        }


__all__ = ["JobRecord", "JobSpec", "JobState"]
