"""The ``repro fleet bench`` harness → ``BENCH_fleet.json``.

Runs one :class:`~repro.fleet.gateway.FleetGateway` scenario under live
telemetry and serializes the fleet-wide rollup: throughput (jobs/hour
of *virtual* makespan), queue-latency percentiles, preemption count and
victims, per-tenant fairness, the admission order, watchdog alerts and
the telemetry registry. Virtual time means the payload is bit-stable for
a given seed — CI diffs it run to run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, replace

from repro.fleet.gateway import FleetConfig, FleetGateway, FleetReport
from repro.observe.watchdog import Watchdog
from repro.telemetry.collect import TraceCollector, replay_watchdog
from repro.telemetry.core import Telemetry


def run_fleet_bench(
    config: FleetConfig | None = None, telemetry: Telemetry | None = None
) -> tuple[dict, FleetReport]:
    """Run the scenario; returns ``(payload, report)``."""
    if config is None:
        config = FleetConfig()
    if telemetry is None:
        telemetry = config.telemetry or Telemetry(enabled=True)
    if config.telemetry is not telemetry:
        config = replace(config, telemetry=telemetry)
    gateway = FleetGateway(config)
    report = gateway.run()
    rollup = report.to_dict()

    # Every job ran under its own tenant-labelled event stream; the
    # merged rollup is the fleet-wide truth (page traffic per tenant,
    # counters summed across jobs), and replaying the merged per-step
    # stream through a fresh watchdog fires the rules on fleet totals
    # rather than one engine's registry.
    collected = TraceCollector(gateway.workdir).collect()
    replay_alerts = [
        alert.to_dict()
        for alert in replay_watchdog(
            collected.streams, Watchdog(config=gateway.watchdog.config)
        )
    ]
    payload = {
        "benchmark": "fleet_bench",
        "config": _config_payload(config),
        "fleet": {
            "jobs_per_hour": rollup["jobs_per_hour"],
            "jobs_completed": rollup["jobs_completed"],
            "jobs_submitted": rollup["jobs_submitted"],
            "makespan_seconds": rollup["makespan_seconds"],
            "preemptions": rollup["preemptions"],
            "p99_queue_latency_seconds": rollup["queue_latency_seconds"]["p99"],
            "queue_latency_seconds": rollup["queue_latency_seconds"],
            "fairness": rollup["fairness"],
            "tenant_traffic": collected.rollup["tenant_traffic"],
        },
        "admission_order": rollup["admission_order"],
        "preemption_events": rollup["preemption_events"],
        "jobs": rollup["jobs"],
        "alerts": rollup["alerts"] + replay_alerts,
        "events": report.events,
        "telemetry": telemetry.dump(),
        "rollup": collected.rollup,
        "workdir": gateway.workdir,
    }
    return payload, report


def _config_payload(config: FleetConfig) -> dict:
    payload = asdict(replace(config, telemetry=None))
    payload.pop("telemetry", None)
    payload["traffic"] = asdict(config.resolved_traffic())
    return payload


def save_fleet_bench(payload: dict, path: str) -> None:
    """Write the payload as deterministic JSON (sorted keys)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


__all__ = ["run_fleet_bench", "save_fleet_bench"]
