"""Reusable engine construction — one ``JobFactory``, every driver.

Four call sites used to hand-roll the same tiny-transformer workload
before handing it to ``repro.api.initialize``: the chaos harness, the
profiling bench, ``repro train`` and the cluster workers. The fleet
gateway makes a fifth, and builds engines *repeatedly* (a preempted job's
resume must reconstruct exactly the engine it lost). ``JobFactory``
owns that recipe: a frozen :class:`JobWorkload` describes the model and
data stream, and the factory turns it into models, optimizers, batch
streams, engines and a page-footprint estimate — all deterministic
functions of the workload, which is what makes preempt→resume
bit-identical and fleet admission decisions reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn import MixedPrecisionAdam, TinyTransformerLM, lm_synthetic_batches


@dataclass(frozen=True)
class JobWorkload:
    """One training job's model + data knobs (a deterministic recipe)."""

    vocab_size: int = 32
    d_model: int = 32
    d_ffn: int = 64
    num_heads: int = 4
    layers: int = 2
    seq_len: int = 16
    batch_size: int = 8
    lr: float = 2e-3
    seed: int = 0


class JobFactory:
    """Builds models, optimizers, engines and batches from one workload.

    Everything is a pure function of the workload: calling any method
    twice yields bit-identical objects, so a resumed job retrains the
    same numbers it would have produced uninterrupted.
    """

    def __init__(self, workload: JobWorkload | None = None):
        self.workload = workload or JobWorkload()

    def model(self) -> TinyTransformerLM:
        w = self.workload
        return TinyTransformerLM(
            vocab_size=w.vocab_size,
            d_model=w.d_model,
            d_ffn=w.d_ffn,
            num_heads=w.num_heads,
            num_layers=w.layers,
            max_seq=w.seq_len,
            seed=w.seed,
        )

    def optimizer(self, model) -> MixedPrecisionAdam:
        return MixedPrecisionAdam(model.parameters(), lr=self.workload.lr)

    def engine(self, config):
        """Fresh model + optimizer wrapped by ``repro.api.initialize``."""
        from repro.api import initialize

        model = self.model()
        return initialize(model, self.optimizer(model), config)

    def batches(self, steps: int) -> list:
        """The job's deterministic batch stream (seed+1, every driver)."""
        w = self.workload
        return list(
            lm_synthetic_batches(
                w.vocab_size, w.seq_len, w.batch_size, steps, seed=w.seed + 1
            )
        )

    def page_footprint(self, page_bytes: int) -> int:
        """Upper bound on pages the engine pins: FP16 + 3×FP32 per param.

        Matches the engine's registration policy (small tensors take an
        individual page; large tensors may share only their tails), so it
        never under-counts — the admission-control contract.
        """
        pages = 0
        for _, param in self.model().named_parameters():
            for bytes_per_el in (2, 4, 4, 4):  # fp16, master, m, v
                nbytes = param.data.size * bytes_per_el
                pages += max(1, -(-nbytes // page_bytes))
        return pages


__all__ = ["JobFactory", "JobWorkload"]
