"""The fleet gateway: admission, scheduling, preemption, rollup.

A single-threaded discrete-event loop over *virtual* time drives the
whole control plane, which is what makes ``repro fleet bench``
deterministic: arrivals come from the seeded traffic generator, each
running job's next quantum completion is an event priced by the DES cost
model, and every decision (placement, preemption victim, admission
order) is a pure function of that state.

The engines are real. Each placed job trains an actual tiny-transformer
:class:`~repro.engine.angel.AngelModel` whose pages are charged against
the node's shared :class:`~repro.memory.PageQuota` ledger. Quanta are
executed *lazily at their completion events*: until the event fires, the
engine still holds the state of the last completed quantum, so a
preemption — which always happens at an event time — checkpoints exactly
``steps_done`` steps through the crash-consistent snapshot path and the
in-flight quantum's virtual time is the preemption's lost work. A
resumed job rebuilds its engine from the same :class:`JobFactory`
recipe, restores the snapshot, and replays the same batch stream — so
its final losses are bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field

from repro.checkpoint.snapshot import (
    latest_good_snapshot,
    prune_snapshots,
    save_snapshot,
    snapshot_path,
)
from repro.checkpoint.trainer_state import capture_engine_state, restore_engine_state
from repro.engine.angel import AngelConfig
from repro.errors import ConfigurationError, SchedulingError
from repro.fleet.factory import JobFactory
from repro.fleet.jobs import JobRecord, JobState
from repro.fleet.scheduler import FairShareScheduler, FleetNode
from repro.fleet.traffic import TrafficConfig, generate_jobs
from repro.memory.allocator import PageQuota
from repro.protocols import TelemetryLike
from repro.telemetry.export import SinkSpec, telemetry_dir
from repro.telemetry.registry import nearest_rank
from repro.units import KiB, MiB


@dataclass(frozen=True)
class FleetConfig:
    """One fleet scenario: traffic, machines, quotas, policy knobs."""

    seed: int = 7
    #: Submission stream; ``None`` derives ``TrafficConfig(seed=seed)``.
    traffic: TrafficConfig | None = None
    num_nodes: int = 2
    #: Page capacity of each node's shared ledger — the packing budget.
    #: Sized against the stand-in engines (a 1-layer job pins ~60 pages,
    #: a 2-layer job ~100 at 32 KiB pages): one deep + one shallow job
    #: fill a node, two deep jobs do not fit together.
    node_pages: int = 160
    #: Per-tenant cap on each node (< node_pages keeps one tenant from
    #: monopolizing a machine; the quota the fleet tests exceed).
    tenant_quota_pages: int = 120
    page_bytes: int = 32 * KiB
    #: Private per-engine pool sizes; generous — the *node ledger* is the
    #: binding constraint, not the engine pools.
    gpu_memory_bytes: int = 2 * MiB
    cpu_memory_bytes: int = 24 * MiB
    #: Steps a job runs per scheduling quantum (preemption granularity).
    quantum_steps: int = 2
    #: Virtual seconds a starved higher-priority job waits before it may
    #: preempt; 0 preempts at the first scheduling pass it loses.
    preempt_grace_seconds: float = 0.0
    #: Nominal (batch, seq) the DES cost model prices virtual steps at.
    est_seq_len: int = 256
    est_micro_batch: int = 1
    #: Snapshots kept per job directory (preemption churn bound).
    keep_snapshots: int = 2
    workdir: str | None = None
    telemetry: TelemetryLike | None = None

    def __post_init__(self) -> None:
        if self.quantum_steps < 1:
            raise ConfigurationError("quantum_steps must be >= 1")
        if self.tenant_quota_pages > self.node_pages:
            raise ConfigurationError(
                "tenant_quota_pages cannot exceed node_pages"
            )

    def resolved_traffic(self) -> TrafficConfig:
        return self.traffic or TrafficConfig(seed=self.seed)


@dataclass
class FleetReport:
    """Everything one gateway run produced, rolled up fleet-wide."""

    config: FleetConfig
    jobs: list[JobRecord]
    makespan_seconds: float
    admission_order: list[int]
    preemption_events: list[dict]
    fairness: dict
    events: list[dict] = field(default_factory=list)
    alerts: list[dict] = field(default_factory=list)

    @property
    def completed(self) -> list[JobRecord]:
        return [job for job in self.jobs if job.state is JobState.COMPLETED]

    @property
    def preemptions(self) -> int:
        return sum(job.preemptions for job in self.jobs)

    def jobs_per_hour(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return len(self.completed) * 3600.0 / self.makespan_seconds

    def queue_latencies(self) -> list[float]:
        return sorted(
            job.queue_latency
            for job in self.jobs
            if job.queue_latency is not None
        )

    def latency_percentile(self, fraction: float) -> float | None:
        """Queue-wait percentile over every job that started (e.g. .99)."""
        waits = self.queue_latencies()
        if not waits:
            return None
        return nearest_rank(waits, fraction * 100)

    def to_dict(self) -> dict:
        waits = self.queue_latencies()
        return {
            "jobs_per_hour": round(self.jobs_per_hour(), 6),
            "jobs_completed": len(self.completed),
            "jobs_submitted": len(self.jobs),
            "makespan_seconds": round(self.makespan_seconds, 6),
            "preemptions": self.preemptions,
            "queue_latency_seconds": {
                "mean": round(sum(waits) / len(waits), 6) if waits else None,
                "p50": self.latency_percentile(0.50),
                "p99": self.latency_percentile(0.99),
                "max": waits[-1] if waits else None,
            },
            "fairness": self.fairness,
            "admission_order": list(self.admission_order),
            "preemption_events": list(self.preemption_events),
            "jobs": [job.to_dict() for job in self.jobs],
            "alerts": list(self.alerts),
        }


class FleetGateway:
    """Admits, schedules, preempts and resumes jobs over virtual time."""

    def __init__(self, config: FleetConfig, workdir: str | None = None):
        self.config = config
        workdir = workdir or config.workdir
        if workdir is None:
            import tempfile

            workdir = tempfile.mkdtemp(prefix="repro-fleet-")
        self.workdir = workdir
        telemetry = config.telemetry
        if telemetry is None:
            from repro.telemetry.core import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.telemetry = telemetry
        from repro.hardware.cluster import a100_cluster
        from repro.observe.watchdog import Watchdog
        from repro.tracer.costmodel import CostModel

        server = a100_cluster(config.num_nodes).server
        nodes = [
            FleetNode(
                name=f"node{i}",
                quota=PageQuota(
                    quotas={
                        tenant: config.tenant_quota_pages
                        for tenant in config.resolved_traffic().tenants
                    },
                    capacity_pages=config.node_pages,
                    telemetry=telemetry,
                ),
                capacity_pages=config.node_pages,
            )
            for i in range(config.num_nodes)
        ]
        self.scheduler = FairShareScheduler(
            nodes,
            CostModel(gpu=server.gpus[0], cpu=server.cpu),
            page_bytes=config.page_bytes,
            est_seq_len=config.est_seq_len,
            est_micro_batch=config.est_micro_batch,
        )
        #: Fleet-wide watchdog: every job's engine is observed at quantum
        #: boundaries, so alerts from all tenants roll up in one place.
        self.watchdog = Watchdog(telemetry=telemetry)
        #: Event-file recipe under workdir/telemetry/: one stream per job
        #: (tenant-labelled, feeding the per-tenant traffic rollup) plus
        #: the gateway's own (queue depth, quota gauges, alerts).
        self.sink_spec = SinkSpec(telemetry_dir(self.workdir))
        self._sinks: dict[int, object] = {}
        self._gateway_sink = self.sink_spec.open(
            "gateway", role="gateway", telemetry=telemetry
        )
        self._tick = 0
        self._engines: dict[int, object] = {}
        self._batches: dict[int, list] = {}
        self._events: list[dict] = []
        self._admission_order: list[int] = []
        self._preemption_events: list[dict] = []
        self._completion_heap: list[tuple] = []
        self._event_seq = 0

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def run(self, jobs: list | None = None) -> FleetReport:
        """Drive the scenario to completion.

        ``jobs`` overrides the generated traffic with an explicit
        submission list (engineered scenarios, tests); the default is the
        config's seeded stream.
        """
        specs = jobs if jobs is not None else generate_jobs(
            self.config.resolved_traffic()
        )
        records = {spec.job_id: JobRecord(spec) for spec in specs}
        arrivals = sorted(specs, key=lambda s: (s.submit_time, s.job_id))
        pending: list[JobRecord] = []
        next_arrival = 0
        now = 0.0
        try:
            while True:
                times = []
                if next_arrival < len(arrivals):
                    times.append(arrivals[next_arrival].submit_time)
                if self._completion_heap:
                    times.append(self._completion_heap[0][0])
                if not times:
                    if pending:
                        # Nothing running, nothing arriving: whatever is
                        # still queued cannot fit even on idle nodes.
                        for record in pending:
                            self._fail(record, now)
                        pending = []
                    break
                now = min(times)
                while (
                    next_arrival < len(arrivals)
                    and arrivals[next_arrival].submit_time <= now
                ):
                    record = records[arrivals[next_arrival].job_id]
                    record.enqueued_at = now
                    pending.append(record)
                    self._admission_order.append(record.spec.job_id)
                    self.telemetry.record_job("admitted", record.spec.tenant)
                    self._log(now, "admit", record)
                    next_arrival += 1
                while (
                    self._completion_heap
                    and self._completion_heap[0][0] <= now
                ):
                    _, _, job_id, epoch, steps = heapq.heappop(
                        self._completion_heap
                    )
                    record = records[job_id]
                    if record.epoch != epoch or record.state is not JobState.RUNNING:
                        continue  # cancelled by a preemption
                    self._complete_quantum(record, now, steps)
                pending = self._schedule(pending, now)
        finally:
            for engine in self._engines.values():
                engine.close()
            self._engines.clear()
            for sink in self._sinks.values():
                sink.close()
            self._gateway_sink.close(final_step=self._tick)
        return FleetReport(
            config=self.config,
            jobs=[records[spec.job_id] for spec in specs],
            makespan_seconds=now,
            admission_order=self._admission_order,
            preemption_events=self._preemption_events,
            fairness=self.scheduler.fairness(),
            events=self._events,
            alerts=self.watchdog.payload(),
        )

    # ------------------------------------------------------------------
    # Scheduling passes
    # ------------------------------------------------------------------
    def _schedule(self, pending: list[JobRecord], now: float) -> list[JobRecord]:
        progress = True
        while progress and pending:
            progress = False
            for record in self.scheduler.rank(pending):
                node = self.scheduler.find_placement(record)
                if node is None and self._unplaceable_anywhere(record):
                    pending.remove(record)
                    self._fail(record, now)
                    progress = True
                    break
                if node is None:
                    grace = now - record.enqueued_at
                    if grace < self.config.preempt_grace_seconds:
                        continue
                    found = self.scheduler.find_victim(record)
                    if found is None:
                        continue
                    node, victim = found
                    self._preempt(victim, node, record, now)
                    pending.append(victim)
                self._launch(record, node, now)
                pending.remove(record)
                progress = True
                break
        self.telemetry.record_queue_depth(len(pending))
        return pending

    def _unplaceable_anywhere(self, record: JobRecord) -> bool:
        """True when the job would not fit even on an *empty* node."""
        pages = self.scheduler.estimate(record.spec).pages
        tenant_cap = self.config.tenant_quota_pages
        return pages > min(self.config.node_pages, tenant_cap)

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def _job_dir(self, record: JobRecord) -> str:
        path = os.path.join(self.workdir, f"job-{record.spec.job_id:04d}")
        os.makedirs(path, exist_ok=True)
        return path

    def _job_sink(self, record: JobRecord):
        """The job's event stream; reused across preempt/resume cycles
        so its counters accumulate whole-job totals."""
        spec = record.spec
        sink = self._sinks.get(spec.job_id)
        if sink is None:
            sink = self._sinks[spec.job_id] = self.sink_spec.open(
                f"job-{spec.job_id:04d}", role="job", tenant=spec.tenant
            )
        return sink

    def _launch(self, record: JobRecord, node: FleetNode, now: float) -> None:
        spec = record.spec
        factory = JobFactory(spec.workload)
        sink = self._job_sink(record)
        engine = factory.engine(
            AngelConfig(
                gpu_memory_bytes=self.config.gpu_memory_bytes,
                cpu_memory_bytes=self.config.cpu_memory_bytes,
                page_bytes=self.config.page_bytes,
                owner=spec.tenant,
                quota=node.quota,
                telemetry=sink.telemetry,
            )
        )
        resumed = record.state is JobState.PREEMPTED
        if resumed:
            found = latest_good_snapshot(self._job_dir(record))
            if found is None:
                raise SchedulingError(
                    f"job {spec.job_id} preempted but has no snapshot"
                )
            snapshot, step = found
            restore_engine_state(snapshot, engine)
            record.steps_done = step
            record.resumes += 1
        self._engines[spec.job_id] = engine
        if spec.job_id not in self._batches:
            self._batches[spec.job_id] = factory.batches(spec.steps)
        record.state = JobState.RUNNING
        record.node = node.name
        record.pages = engine.allocator.pages_charged
        if record.first_start is None:
            record.first_start = now
        node.running[spec.job_id] = record
        self._push_quantum(record, now)
        self.telemetry.record_job(
            "resumed" if resumed else "started", spec.tenant
        )
        self._log(now, "resume" if resumed else "start", record, node=node.name)

    def _push_quantum(self, record: JobRecord, now: float) -> None:
        steps = min(self.config.quantum_steps, record.remaining_steps)
        est = self.scheduler.estimate(record.spec)
        self._event_seq += 1
        heapq.heappush(
            self._completion_heap,
            (
                now + steps * est.step_seconds,
                self._event_seq,
                record.spec.job_id,
                record.epoch,
                steps,
            ),
        )

    def _complete_quantum(self, record: JobRecord, now: float, steps: int) -> None:
        """Execute the quantum that just finished in virtual time."""
        engine = self._engines[record.spec.job_id]
        batches = self._batches[record.spec.job_id]
        for batch in batches[record.steps_done:record.steps_done + steps]:
            loss = engine(batch)
            engine.backward(loss)
            engine.step()
            record.losses.append(loss.item())
        record.steps_done += steps
        est = self.scheduler.estimate(record.spec)
        elapsed = steps * est.step_seconds
        record.service_seconds += elapsed
        self.scheduler.credit_service(record.spec.tenant, elapsed)
        fired = self.watchdog.observe_engine(engine, step=record.steps_done)
        for alert in fired:
            self._gateway_sink.record_alert(alert)
        self._job_sink(record).step(record.steps_done)
        self._tick += 1
        self._gateway_sink.step(self._tick)
        if record.remaining_steps == 0:
            self._finish(record, now)
        else:
            self._push_quantum(record, now)

    def _preempt(
        self,
        victim: JobRecord,
        node: FleetNode,
        contender: JobRecord,
        now: float,
    ) -> None:
        """Checkpoint and evict ``victim`` to make room for ``contender``.

        The engine holds exactly ``steps_done`` completed steps (quanta
        execute lazily at completion events), so the snapshot is taken on
        a step boundary through the same crash-consistent path the
        resilient trainer uses; the cancelled in-flight quantum is the
        preemption's lost virtual time.
        """
        engine = self._engines.pop(victim.spec.job_id)
        job_dir = self._job_dir(victim)
        snapshot = capture_engine_state(engine, step=victim.steps_done)
        save_snapshot(snapshot, snapshot_path(job_dir, victim.steps_done))
        prune_snapshots(job_dir, keep=self.config.keep_snapshots)
        engine.close()  # returns every page to the node ledger
        node.running.pop(victim.spec.job_id, None)
        victim.epoch += 1  # cancels the in-flight completion event
        est = self.scheduler.estimate(victim.spec)
        victim.lost_seconds += min(
            self.config.quantum_steps, victim.remaining_steps
        ) * est.step_seconds
        victim.state = JobState.PREEMPTED
        victim.node = None
        victim.pages = 0
        victim.preemptions += 1
        victim.enqueued_at = now
        self._preemption_events.append(
            {
                "time": round(now, 6),
                "victim": victim.spec.job_id,
                "victim_tenant": victim.spec.tenant,
                "victim_priority": victim.spec.priority,
                "by_job": contender.spec.job_id,
                "by_tenant": contender.spec.tenant,
                "by_priority": contender.spec.priority,
                "node": node.name,
                "at_step": victim.steps_done,
            }
        )
        self.telemetry.record_job("preempted", victim.spec.tenant)
        self._log(now, "preempt", victim, node=node.name,
                  by_job=contender.spec.job_id)

    def _finish(self, record: JobRecord, now: float) -> None:
        engine = self._engines.pop(record.spec.job_id)
        engine.close()
        for node in self.scheduler.nodes:
            node.running.pop(record.spec.job_id, None)
        record.state = JobState.COMPLETED
        record.finish_time = now
        record.node = None
        record.pages = 0
        self.telemetry.record_job("completed", record.spec.tenant)
        self._log(now, "complete", record)

    def _fail(self, record: JobRecord, now: float) -> None:
        record.state = JobState.FAILED
        record.finish_time = now
        self.telemetry.record_job("failed", record.spec.tenant)
        self._log(now, "fail", record)

    def _log(self, now: float, event: str, record: JobRecord, **extra) -> None:
        entry = {
            "time": round(now, 6),
            "event": event,
            "job_id": record.spec.job_id,
            "tenant": record.spec.tenant,
        }
        entry.update(extra)
        self._events.append(entry)


__all__ = ["FleetConfig", "FleetGateway", "FleetReport"]
